/**
 * @file
 * CxlSystem: an executable CXL0 machine.
 *
 * This is the runtime a program links against to *run* on the CXL0
 * model rather than model-check it: a NUMA-style emulation in which
 * each node's memory is an arena, every CXL0 primitive is an atomic
 * step with exactly the semantics of model::Cxl0Model, propagation is
 * driven by a seeded policy (or manually by tests), crashes can be
 * injected at any moment, and every operation charges simulated
 * nanoseconds from a cost model.
 *
 * Blocking primitives (LFlush/RFlush/GPF and LWB-blocked loads) are
 * realized by *performing* the propagation steps they wait for, which
 * is observationally equivalent to blocking until the nondeterministic
 * tau steps happen (§3.3's MFENCE analogy).
 */

#ifndef CXL0_RUNTIME_SYSTEM_HH
#define CXL0_RUNTIME_SYSTEM_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "model/semantics.hh"
#include "runtime/cost.hh"

namespace cxl0::runtime
{

/** How cache lines drain without explicit flushes. */
enum class PropagationPolicy
{
    Manual, //!< only flushes and explicit evict calls propagate
    Random, //!< each operation may trigger seeded random evictions
    Eager,  //!< every store drains to memory immediately
};

/** Result of an RMW operation. */
struct RmwResult
{
    bool success = false;
    Value previous = 0;
};

/** Construction options. */
struct SystemOptions
{
    model::SystemConfig config;
    model::ModelVariant variant = model::ModelVariant::Base;
    /** Primitive availability (§4 topologies); default unrestricted. */
    model::Restrictions restrictions;
    PropagationPolicy policy = PropagationPolicy::Random;
    /** Eviction probability numerator (out of 100) per operation. */
    unsigned evictionChancePct = 10;
    uint64_t seed = 1;
    CostModel cost = CostModel::calibrated();

    explicit SystemOptions(model::SystemConfig cfg)
        : config(std::move(cfg))
    {
    }

    /** Build options straight from a (possibly restricted) model. */
    static SystemOptions
    fromModel(const model::Cxl0Model &m)
    {
        SystemOptions o(m.config());
        o.variant = m.variant();
        o.restrictions = m.restrictions();
        return o;
    }
};

/**
 * The executable system. Thread-safe: every primitive is one atomic
 * step under an internal lock, matching the model's step granularity.
 */
class CxlSystem
{
  public:
    explicit CxlSystem(SystemOptions options);

    const model::SystemConfig &config() const { return model_.config(); }
    model::ModelVariant variant() const { return model_.variant(); }

    /**
     * Allocate one fresh cell owned by `owner`. Cells are
     * zero-initialized (the model's initial value). Throws when the
     * owner's arena (fixed by config) is exhausted.
     */
    Addr allocate(NodeId owner);

    /** Number of cells still available on `owner`. */
    size_t freeCells(NodeId owner) const;

    // CXL0 primitives (§3.2). `by` is the issuing machine.
    Value load(NodeId by, Addr x);
    void lstore(NodeId by, Addr x, Value v);
    void rstore(NodeId by, Addr x, Value v);
    void mstore(NodeId by, Addr x, Value v);
    void lflush(NodeId by, Addr x);
    void rflush(NodeId by, Addr x);
    void gpf(NodeId by);

    /**
     * Asynchronous remote flush (the CLFLUSHOPT/DC.CVAP analogue the
     * paper notes CXL lacks, §3.2): marks x for persistence but
     * guarantees nothing until the issuer's next fence(). Pending
     * marks die with the issuing machine (like unretired CLFLUSHOPTs).
     */
    void rflushAsync(NodeId by, Addr x);

    /**
     * Ordering fence (SFENCE analogue): blocks until every address
     * the issuer marked with rflushAsync has reached its owner's
     * memory. Amortizes the persistence confirmation over the batch.
     */
    void fence(NodeId by);

    /** Pending async flushes of a node (testing/bench hook). */
    size_t pendingAsyncFlushes(NodeId by) const;

    // RMW primitives (§3.3). cas* succeed iff the current value equals
    // `expected`; a failed CAS behaves as a plain read.
    RmwResult casL(NodeId by, Addr x, Value expected, Value desired);
    RmwResult casR(NodeId by, Addr x, Value expected, Value desired);
    RmwResult casM(NodeId by, Addr x, Value expected, Value desired);
    Value faaL(NodeId by, Addr x, Value delta);
    Value faaR(NodeId by, Addr x, Value delta);
    Value faaM(NodeId by, Addr x, Value delta);

    /**
     * Crash machine `node`: its cache empties, volatile memory
     * zeroes, and (PSN) its lines poison everywhere. Increments the
     * node's epoch so threads can detect they were killed.
     */
    void crash(NodeId node);

    /** Times `node` has crashed. */
    uint64_t epoch(NodeId node) const;

    /** Force one random eviction step (testing hook). */
    void evictOne();

    /**
     * Move every line in `node`'s cache one propagation hop (toward
     * the owner's cache, or to memory when `node` owns it). Testing
     * hook for constructing worst-case crash scenarios.
     */
    void evictCacheOf(NodeId node);

    /** Drain every cache line to its owner's memory. */
    void drainAll();

    /** Inspection for tests: current cached value or kBottom. */
    Value peekCache(NodeId node, Addr x) const;
    /** Inspection for tests: current memory value. */
    Value peekMemory(Addr x) const;
    /** The model invariant (should always hold). */
    bool invariantHolds() const;

    /** Simulated nanoseconds charged so far. */
    double clockNs() const;
    /** Count of primitives executed (loads+stores+flushes+RMWs). */
    uint64_t opCount() const;

  private:
    // All private helpers assume mu_ is held.
    void requireAllowed(NodeId by, model::Op op) const;
    void evictEntryLocked(NodeId i, Addr x);
    void maybeEvictLocked();
    void drainLineLocked(Addr x);
    void drainIssuerLineLocked(NodeId by, Addr x);
    Value readCurrentLocked(NodeId by, Addr x, double *cost);
    void applyLoadEffectLocked(NodeId by, Addr x, Value v);
    void applyStoreLocked(model::Op op, NodeId by, Addr x, Value v);
    RmwResult casImpl(model::Op store_flavour, NodeId by, Addr x,
                      Value expected, Value desired, double store_cost);
    Value faaImpl(model::Op store_flavour, NodeId by, Addr x,
                  Value delta, double store_cost);
    void chargeLocked(double ns);

    model::Cxl0Model model_;
    PropagationPolicy policy_;
    unsigned evictionChancePct_;
    CostModel cost_;

    mutable std::mutex mu_;
    model::State state_;
    Rng rng_;
    std::vector<std::vector<Addr>> freeList_;
    std::vector<std::vector<Addr>> pendingFlush_;
    std::vector<uint64_t> epoch_;
    double clockNs_ = 0.0;
    uint64_t opCount_ = 0;
};

} // namespace cxl0::runtime

#endif // CXL0_RUNTIME_SYSTEM_HH
