/**
 * @file
 * CxlSystem: an executable CXL0 machine.
 *
 * This is the runtime a program links against to *run* on the CXL0
 * model rather than model-check it: a NUMA-style emulation in which
 * each node's memory is an arena, every CXL0 primitive is an atomic
 * step with exactly the semantics of model::Cxl0Model, propagation is
 * driven by a seeded policy (or manually by tests), crashes can be
 * injected at any moment, and every operation charges simulated
 * nanoseconds from a cost model.
 *
 * Blocking primitives (LFlush/RFlush/GPF and LWB-blocked loads) are
 * realized by *performing* the propagation steps they wait for, which
 * is observationally equivalent to blocking until the nondeterministic
 * tau steps happen (§3.3's MFENCE analogy).
 */

#ifndef CXL0_RUNTIME_SYSTEM_HH
#define CXL0_RUNTIME_SYSTEM_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "model/semantics.hh"
#include "runtime/cost.hh"

namespace cxl0::runtime
{

/** How cache lines drain without explicit flushes. */
enum class PropagationPolicy
{
    Manual, //!< only flushes and explicit evict calls propagate
    Random, //!< each operation may trigger seeded random evictions
    Eager,  //!< every store drains to memory immediately
};

/** Result of an RMW operation. */
struct RmwResult
{
    bool success = false;
    Value previous = 0;
};

/**
 * One executed primitive, identified by its position in the system's
 * step sequence. Every primitive is a potential crash point: the
 * campaign harness (src/inject) discovers persist boundaries by
 * tracing a workload and then arms crashes between any two steps.
 */
struct StepRecord
{
    model::Op op = model::Op::Tau;
    NodeId by = 0;
    /** kNullAddr for whole-machine primitives (GPF, fence). */
    Addr addr = kNullAddr;

    bool operator==(const StepRecord &other) const = default;
};

/**
 * One policy-driven propagation event: during primitive #step, node's
 * cached copy of addr moved one hop (toward the owner's cache, or to
 * memory). Recording these during a run and replaying them later makes
 * the propagation schedule independent of the RNG implementation, so
 * campaign artifacts stay replayable byte-for-byte.
 */
struct EvictEvent
{
    uint64_t step = 0;
    NodeId node = 0;
    Addr addr = 0;

    bool operator==(const EvictEvent &other) const = default;
};

/**
 * Thrown out of a primitive preempted by an armed crash of its own
 * issuing machine: the logical thread running there died mid-op. The
 * exception unwinds through the data-structure operation back to the
 * workload driver, which records the operation as pending.
 */
struct ThreadKilled
{
    NodeId node = 0;   //!< machine that crashed
    uint64_t step = 0; //!< step index the crash preempted
};

/** Construction options. */
struct SystemOptions
{
    model::SystemConfig config;
    model::ModelVariant variant = model::ModelVariant::Base;
    /** Primitive availability (§4 topologies); default unrestricted. */
    model::Restrictions restrictions;
    PropagationPolicy policy = PropagationPolicy::Random;
    /** Eviction probability numerator (out of 100) per operation. */
    unsigned evictionChancePct = 10;
    uint64_t seed = 1;
    CostModel cost = CostModel::calibrated();

    explicit SystemOptions(model::SystemConfig cfg)
        : config(std::move(cfg))
    {
    }

    /** Build options straight from a (possibly restricted) model. */
    static SystemOptions
    fromModel(const model::Cxl0Model &m)
    {
        SystemOptions o(m.config());
        o.variant = m.variant();
        o.restrictions = m.restrictions();
        return o;
    }
};

/**
 * The executable system. Thread-safe: every primitive is one atomic
 * step under an internal lock, matching the model's step granularity.
 */
class CxlSystem
{
  public:
    explicit CxlSystem(SystemOptions options);

    const model::SystemConfig &config() const { return model_.config(); }
    model::ModelVariant variant() const { return model_.variant(); }

    /**
     * Allocate one fresh cell owned by `owner`. Cells are
     * zero-initialized (the model's initial value). Throws when the
     * owner's arena (fixed by config) is exhausted.
     */
    Addr allocate(NodeId owner);

    /** Number of cells still available on `owner`. */
    size_t freeCells(NodeId owner) const;

    // CXL0 primitives (§3.2). `by` is the issuing machine.
    Value load(NodeId by, Addr x);
    void lstore(NodeId by, Addr x, Value v);
    void rstore(NodeId by, Addr x, Value v);
    void mstore(NodeId by, Addr x, Value v);
    void lflush(NodeId by, Addr x);
    void rflush(NodeId by, Addr x);
    void gpf(NodeId by);

    /**
     * Asynchronous remote flush (the CLFLUSHOPT/DC.CVAP analogue the
     * paper notes CXL lacks, §3.2): marks x for persistence but
     * guarantees nothing until the issuer's next fence(). Pending
     * marks die with the issuing machine (like unretired CLFLUSHOPTs).
     */
    void rflushAsync(NodeId by, Addr x);

    /**
     * Ordering fence (SFENCE analogue): blocks until every address
     * the issuer marked with rflushAsync has reached its owner's
     * memory. Amortizes the persistence confirmation over the batch.
     */
    void fence(NodeId by);

    /** Pending async flushes of a node (testing/bench hook). */
    size_t pendingAsyncFlushes(NodeId by) const;

    // RMW primitives (§3.3). cas* succeed iff the current value equals
    // `expected`; a failed CAS behaves as a plain read.
    RmwResult casL(NodeId by, Addr x, Value expected, Value desired);
    RmwResult casR(NodeId by, Addr x, Value expected, Value desired);
    RmwResult casM(NodeId by, Addr x, Value expected, Value desired);
    Value faaL(NodeId by, Addr x, Value delta);
    Value faaR(NodeId by, Addr x, Value delta);
    Value faaM(NodeId by, Addr x, Value delta);

    /**
     * Crash machine `node`: its cache empties, volatile memory
     * zeroes, and (PSN) its lines poison everywhere. Increments the
     * node's epoch so threads can detect they were killed.
     */
    void crash(NodeId node);

    /** Times `node` has crashed. */
    uint64_t epoch(NodeId node) const;

    // ---- crash-injection campaign hooks (src/inject) ----------------

    /**
     * Arm a crash of `node` immediately before primitive #step
     * executes (`step` compares against opCount() at the moment the
     * primitive begins). The crash applies exactly as crash() would;
     * if the preempted primitive's own issuer is the crashed machine,
     * the primitive does not execute and ThreadKilled is thrown so
     * the in-flight high-level operation unwinds as pending.
     */
    void armCrash(uint64_t step, NodeId node);

    /** Whether every armed crash has fired. */
    bool armedCrashesFired() const;

    /**
     * Record every primitive (op, issuer, addr) plus every
     * policy-driven eviction. Cleared when (re-)enabled.
     */
    void enableStepTrace(bool on);

    /** The recorded primitives since enableStepTrace(true). */
    std::vector<StepRecord> stepTrace() const;

    /** The recorded policy-driven evictions (Random policy only). */
    std::vector<EvictEvent> evictionTrace() const;

    /**
     * Drive propagation from a recorded schedule instead of the
     * policy: at the end of primitive #step, every event with that
     * step index fires (skipped gracefully when the line is no longer
     * cached there — e.g. after the replayed execution diverged).
     * Events must be sorted by step, as evictionTrace() returns them.
     */
    void setEvictionReplay(std::vector<EvictEvent> schedule);

    /** Force one random eviction step (testing hook). */
    void evictOne();

    /**
     * Move every line in `node`'s cache one propagation hop (toward
     * the owner's cache, or to memory when `node` owns it). Testing
     * hook for constructing worst-case crash scenarios.
     */
    void evictCacheOf(NodeId node);

    /** Drain every cache line to its owner's memory. */
    void drainAll();

    /** Inspection for tests: current cached value or kBottom. */
    Value peekCache(NodeId node, Addr x) const;
    /** Inspection for tests: current memory value. */
    Value peekMemory(Addr x) const;
    /** The model invariant (should always hold). */
    bool invariantHolds() const;

    /** Simulated nanoseconds charged so far. */
    double clockNs() const;
    /** Count of primitives executed (loads+stores+flushes+RMWs). */
    uint64_t opCount() const;

  private:
    // All private helpers assume mu_ is held.
    void requireAllowed(NodeId by, model::Op op) const;
    void beginStepLocked(model::Op op, NodeId by, Addr x);
    void crashLocked(NodeId node);
    void evictEntryLocked(NodeId i, Addr x);
    void maybeEvictLocked();
    void drainLineLocked(Addr x);
    void drainIssuerLineLocked(NodeId by, Addr x);
    Value readCurrentLocked(NodeId by, Addr x, double *cost);
    void applyLoadEffectLocked(NodeId by, Addr x, Value v);
    void applyStoreLocked(model::Op op, NodeId by, Addr x, Value v);
    RmwResult casImpl(model::Op store_flavour, NodeId by, Addr x,
                      Value expected, Value desired, double store_cost);
    Value faaImpl(model::Op store_flavour, NodeId by, Addr x,
                  Value delta, double store_cost);
    void chargeLocked(double ns);

    model::Cxl0Model model_;
    PropagationPolicy policy_;
    unsigned evictionChancePct_;
    CostModel cost_;

    struct ArmedCrash
    {
        uint64_t step;
        NodeId node;
        bool fired;
    };

    mutable std::mutex mu_;
    model::State state_;
    Rng rng_;
    std::vector<std::vector<Addr>> freeList_;
    std::vector<std::vector<Addr>> pendingFlush_;
    std::vector<uint64_t> epoch_;
    double clockNs_ = 0.0;
    uint64_t opCount_ = 0;

    std::vector<ArmedCrash> armed_;
    bool traceSteps_ = false;
    std::vector<StepRecord> trace_;
    std::vector<EvictEvent> evictions_;
    bool replayEvictions_ = false;
    std::vector<EvictEvent> replay_;
    size_t replayNext_ = 0;
};

} // namespace cxl0::runtime

#endif // CXL0_RUNTIME_SYSTEM_HH
