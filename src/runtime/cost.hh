/**
 * @file
 * Cost model for the executable runtime.
 *
 * The runtime runs on ordinary shared memory (the "NUMA-node CXL
 * emulation" substitution), so wall-clock time says little about CXL
 * behaviour. Instead every primitive charges simulated nanoseconds to
 * a per-system clock using this table, whose defaults reuse the Fig. 5
 * calibration: local cache writes are cheap, crossing to another
 * node's cache costs a link round trip, and reaching remote
 * persistence costs the most.
 */

#ifndef CXL0_RUNTIME_COST_HH
#define CXL0_RUNTIME_COST_HH

namespace cxl0::runtime
{

/** Simulated nanosecond charges per primitive. */
struct CostModel
{
    double loadLocalCache = 5;    //!< hit in the issuer's cache
    double loadRemoteCache = 130; //!< served from another cache
    double loadLocalMem = 110;    //!< memory on the issuer's node
    double loadRemoteMem = 257;   //!< memory on another node (2.34x)
    double lstore = 15;           //!< write into the local cache
    double rstoreLocal = 15;      //!< RStore by the owner == LStore
    double rstoreRemote = 198;    //!< push into the owner's cache
    double mstoreLocal = 150;     //!< persist on the local node
    double mstoreRemote = 287;    //!< persist on a remote node
    double flushHop = 120;        //!< one forced propagation hop
    /** Fabric round trip an RFlush pays to confirm that no cache in
     *  the system still holds the line (an LFlush needs no such
     *  confirmation — the basis of the §6.1 optimization). */
    double rflushConfirm = 45;
    /** Issuing an asynchronous flush (fire-and-forget). */
    double asyncFlushIssue = 10;
    double rmwExtra = 20;         //!< RMW surcharge over load+store
    double gpfPerLine = 60;       //!< GPF drain cost per dirty line

    /** The paper's calibration (defaults above). */
    static CostModel calibrated() { return CostModel{}; }

    /** A free model (all zero) for tests that only check semantics. */
    static CostModel zero();
};

} // namespace cxl0::runtime

#endif // CXL0_RUNTIME_COST_HH
