#include "runtime/cost.hh"

namespace cxl0::runtime
{

CostModel
CostModel::zero()
{
    CostModel m;
    m.loadLocalCache = 0;
    m.loadRemoteCache = 0;
    m.loadLocalMem = 0;
    m.loadRemoteMem = 0;
    m.lstore = 0;
    m.rstoreLocal = 0;
    m.rstoreRemote = 0;
    m.mstoreLocal = 0;
    m.mstoreRemote = 0;
    m.flushHop = 0;
    m.rflushConfirm = 0;
    m.asyncFlushIssue = 0;
    m.rmwExtra = 0;
    m.gpfPerLine = 0;
    return m;
}

} // namespace cxl0::runtime
