#include "runtime/snapshot.hh"

#include "common/logging.hh"

namespace cxl0::runtime
{

MemoryImage
takeSnapshot(CxlSystem &sys, NodeId by)
{
    sys.gpf(by);
    MemoryImage img;
    img.memory.reserve(sys.config().numAddrs());
    for (Addr x = 0; x < sys.config().numAddrs(); ++x)
        img.memory.push_back(sys.peekMemory(x));
    return img;
}

void
restoreSnapshot(CxlSystem &sys, NodeId by, const MemoryImage &img)
{
    if (img.memory.size() != sys.config().numAddrs())
        CXL0_FATAL("image has ", img.memory.size(), " cells, system ",
                   sys.config().numAddrs());
    for (Addr x = 0; x < sys.config().numAddrs(); ++x)
        sys.mstore(by, x, img.memory[x]);
}

std::vector<Addr>
diffSnapshot(CxlSystem &sys, NodeId by, const MemoryImage &img)
{
    if (img.memory.size() != sys.config().numAddrs())
        CXL0_FATAL("image has ", img.memory.size(), " cells, system ",
                   sys.config().numAddrs());
    sys.gpf(by);
    std::vector<Addr> out;
    for (Addr x = 0; x < sys.config().numAddrs(); ++x)
        if (sys.peekMemory(x) != img.memory[x])
            out.push_back(x);
    return out;
}

} // namespace cxl0::runtime
