#include "runtime/system.hh"

#include "common/logging.hh"

namespace cxl0::runtime
{

using model::Label;
using model::Op;

CxlSystem::CxlSystem(SystemOptions options)
    : model_(options.config, options.variant, options.restrictions),
      policy_(options.policy),
      evictionChancePct_(options.evictionChancePct), cost_(options.cost),
      state_(model_.initialState()), rng_(options.seed),
      freeList_(options.config.numNodes()),
      pendingFlush_(options.config.numNodes()),
      epoch_(options.config.numNodes(), 0)
{
    // Build per-node free lists (ascending allocation order).
    for (NodeId n = 0; n < config().numNodes(); ++n) {
        std::vector<Addr> owned = config().addrsOwnedBy(n);
        for (auto it = owned.rbegin(); it != owned.rend(); ++it)
            freeList_[n].push_back(*it);
    }
}

Addr
CxlSystem::allocate(NodeId owner)
{
    std::lock_guard<std::mutex> guard(mu_);
    if (owner >= freeList_.size())
        CXL0_FATAL("allocate on unknown node ", owner);
    if (freeList_[owner].empty())
        CXL0_FATAL("node ", owner, " arena exhausted");
    Addr x = freeList_[owner].back();
    freeList_[owner].pop_back();
    return x;
}

size_t
CxlSystem::freeCells(NodeId owner) const
{
    std::lock_guard<std::mutex> guard(mu_);
    return freeList_[owner].size();
}

void
CxlSystem::chargeLocked(double ns)
{
    clockNs_ += ns;
    opCount_ += 1;
}

void
CxlSystem::requireAllowed(NodeId by, Op op) const
{
    if (!model_.restrictions().allows(by, op))
        CXL0_FATAL(model::opName(op), " by node ", by,
                   " is not permitted in this configuration");
}

void
CxlSystem::beginStepLocked(Op op, NodeId by, Addr x)
{
    // Armed crash injection: a crash scheduled for this step applies
    // *before* the primitive executes, exactly like the model's E_i
    // transition interleaving ahead of the step.
    bool killed = false;
    for (ArmedCrash &a : armed_) {
        if (!a.fired && a.step == opCount_) {
            a.fired = true;
            crashLocked(a.node);
            killed |= (a.node == by);
        }
    }
    if (traceSteps_)
        trace_.push_back(StepRecord{op, by, x});
    if (killed)
        throw ThreadKilled{by, opCount_};
}

void
CxlSystem::evictEntryLocked(NodeId i, Addr x)
{
    // One tau propagation hop for (i, x), exactly as the model's
    // Propagate-C-C / Propagate-C-M rules.
    Value v = state_.cache(i, x);
    if (v == kBottom)
        return;
    NodeId k = config().ownerOf(x);
    if (i == k) {
        state_.invalidateEverywhere(x);
        state_.setMemory(x, v);
    } else if (model_.restrictions().allowCacheToCache) {
        state_.setCache(i, x, kBottom);
        state_.setCache(k, x, v);
    }
}

void
CxlSystem::maybeEvictLocked()
{
    // Replay mode: fire the recorded events for the primitive in
    // progress (opCount_ was already charged, so it is one past the
    // current step index) instead of consulting the policy RNG.
    if (replayEvictions_) {
        uint64_t step = opCount_ == 0 ? 0 : opCount_ - 1;
        while (replayNext_ < replay_.size() &&
               replay_[replayNext_].step <= step) {
            const EvictEvent &e = replay_[replayNext_++];
            if (e.node < config().numNodes() &&
                e.addr < config().numAddrs() &&
                state_.cacheValid(e.node, e.addr))
                evictEntryLocked(e.node, e.addr);
        }
        return;
    }
    if (policy_ != PropagationPolicy::Random)
        return;
    if (!rng_.chance(evictionChancePct_, 100))
        return;
    // A few random probes stand in for the cache replacement policy;
    // scanning the whole address space per op would be O(addrs).
    for (int probe = 0; probe < 4; ++probe) {
        NodeId i =
            static_cast<NodeId>(rng_.nextBelow(config().numNodes()));
        Addr x =
            static_cast<Addr>(rng_.nextBelow(config().numAddrs()));
        if (state_.cacheValid(i, x)) {
            if (traceSteps_)
                evictions_.push_back(
                    EvictEvent{opCount_ == 0 ? 0 : opCount_ - 1, i, x});
            evictEntryLocked(i, x);
            return;
        }
    }
}

void
CxlSystem::drainIssuerLineLocked(NodeId by, Addr x)
{
    // Perform the tau steps an LFlush blocks on: move the issuer's
    // copy toward the owner, and if the issuer owns x, to memory.
    if (!state_.cacheValid(by, x))
        return;
    NodeId k = config().ownerOf(x);
    Value v = state_.cache(by, x);
    if (by == k) {
        state_.invalidateEverywhere(x);
        state_.setMemory(x, v);
    } else {
        if (!model_.restrictions().allowCacheToCache)
            CXL0_FATAL("LFlush by node ", by, " cannot drain: "
                       "cache-to-cache propagation is disabled");
        state_.setCache(by, x, kBottom);
        state_.setCache(k, x, v);
    }
    clockNs_ += cost_.flushHop;
}

void
CxlSystem::drainLineLocked(Addr x)
{
    // Perform the tau steps an RFlush blocks on: every cached copy of
    // x propagates to the owner's memory.
    NodeId k = config().ownerOf(x);
    for (NodeId i = 0; i < config().numNodes(); ++i) {
        if (i == k || !state_.cacheValid(i, x))
            continue;
        if (!model_.restrictions().allowCacheToCache)
            CXL0_FATAL("RFlush cannot drain x", x, ": cache-to-cache "
                       "propagation is disabled");
        Value v = state_.cache(i, x);
        state_.setCache(i, x, kBottom);
        state_.setCache(k, x, v);
        clockNs_ += cost_.flushHop;
    }
    if (state_.cacheValid(k, x)) {
        Value v = state_.cache(k, x);
        state_.invalidateEverywhere(x);
        state_.setMemory(x, v);
        clockNs_ += cost_.flushHop;
    }
}

Value
CxlSystem::readCurrentLocked(NodeId by, Addr x, double *cost)
{
    // Resolve the value a load observes, performing forced drains when
    // the variant blocks the load (LWB / no-remote-serve settings).
    auto v = model_.loadable(state_, by, x);
    if (!v) {
        drainLineLocked(x);
        v = model_.loadable(state_, by, x);
        CXL0_ASSERT(v, "load still blocked after full drain");
    }
    if (cost) {
        NodeId k = config().ownerOf(x);
        if (state_.cacheValid(by, x))
            *cost = cost_.loadLocalCache;
        else if (state_.cachedAnywhere(x))
            *cost = cost_.loadRemoteCache;
        else
            *cost = (by == k) ? cost_.loadLocalMem : cost_.loadRemoteMem;
    }
    return *v;
}

void
CxlSystem::applyLoadEffectLocked(NodeId by, Addr x, Value v)
{
    // LOAD-from-C copies the value into the issuer's cache; under LWB
    // (or no-remote-serve) loads never mutate the state; LOAD-from-M
    // has no effect either.
    bool own_only = (model_.variant() == model::ModelVariant::Lwb) ||
                    !model_.restrictions().serveLoadFromRemoteCache;
    if (own_only)
        return;
    if (state_.cachedAnywhere(x))
        state_.setCache(by, x, v);
}

Value
CxlSystem::load(NodeId by, Addr x)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::Load, by, x);
    requireAllowed(by, Op::Load);
    double cost = 0.0;
    Value v = readCurrentLocked(by, x, &cost);
    applyLoadEffectLocked(by, x, v);
    chargeLocked(cost);
    maybeEvictLocked();
    return v;
}

void
CxlSystem::applyStoreLocked(Op op, NodeId by, Addr x, Value v)
{
    requireAllowed(by, op);
    NodeId k = config().ownerOf(x);
    switch (op) {
      case Op::LStore:
        state_.setCache(by, x, v);
        state_.invalidateOthers(by, x);
        break;
      case Op::RStore:
        state_.setCache(k, x, v);
        state_.invalidateOthers(k, x);
        break;
      case Op::MStore:
        state_.setMemory(x, v);
        state_.invalidateEverywhere(x);
        break;
      default:
        CXL0_PANIC("not a store flavour");
    }
}

void
CxlSystem::lstore(NodeId by, Addr x, Value v)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::LStore, by, x);
    applyStoreLocked(Op::LStore, by, x, v);
    chargeLocked(cost_.lstore);
    if (policy_ == PropagationPolicy::Eager)
        drainLineLocked(x);
    maybeEvictLocked();
}

void
CxlSystem::rstore(NodeId by, Addr x, Value v)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::RStore, by, x);
    applyStoreLocked(Op::RStore, by, x, v);
    chargeLocked(by == config().ownerOf(x) ? cost_.rstoreLocal
                                           : cost_.rstoreRemote);
    if (policy_ == PropagationPolicy::Eager)
        drainLineLocked(x);
    maybeEvictLocked();
}

void
CxlSystem::mstore(NodeId by, Addr x, Value v)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::MStore, by, x);
    applyStoreLocked(Op::MStore, by, x, v);
    chargeLocked(by == config().ownerOf(x) ? cost_.mstoreLocal
                                           : cost_.mstoreRemote);
    maybeEvictLocked();
}

void
CxlSystem::lflush(NodeId by, Addr x)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::LFlush, by, x);
    requireAllowed(by, Op::LFlush);
    drainIssuerLineLocked(by, x);
    chargeLocked(0.0);
}

void
CxlSystem::rflush(NodeId by, Addr x)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::RFlush, by, x);
    requireAllowed(by, Op::RFlush);
    drainLineLocked(x);
    chargeLocked(cost_.rflushConfirm);
}

void
CxlSystem::rflushAsync(NodeId by, Addr x)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::RFlush, by, x);
    requireAllowed(by, Op::RFlush);
    pendingFlush_[by].push_back(x);
    chargeLocked(cost_.asyncFlushIssue);
}

void
CxlSystem::fence(NodeId by)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::RFlush, by, kNullAddr);
    if (pendingFlush_[by].empty()) {
        chargeLocked(0.0);
        return;
    }
    for (Addr x : pendingFlush_[by])
        drainLineLocked(x);
    pendingFlush_[by].clear();
    // One confirmation round trip covers the whole batch — the
    // amortization CLFLUSHOPT + SFENCE gives on x86 (§3.2).
    chargeLocked(cost_.rflushConfirm);
}

size_t
CxlSystem::pendingAsyncFlushes(NodeId by) const
{
    std::lock_guard<std::mutex> guard(mu_);
    return pendingFlush_[by].size();
}

void
CxlSystem::gpf(NodeId by)
{
    std::lock_guard<std::mutex> guard(mu_);
    beginStepLocked(Op::Gpf, by, kNullAddr);
    requireAllowed(by, Op::Gpf);
    size_t drained = 0;
    for (Addr x = 0; x < config().numAddrs(); ++x) {
        if (state_.cachedAnywhere(x)) {
            drainLineLocked(x);
            ++drained;
        }
    }
    chargeLocked(cost_.gpfPerLine * static_cast<double>(drained));
}

RmwResult
CxlSystem::casImpl(Op store_flavour, NodeId by, Addr x, Value expected,
                   Value desired, double store_cost)
{
    std::lock_guard<std::mutex> guard(mu_);
    Op rmw_op = store_flavour == Op::LStore  ? Op::LRmw
                : store_flavour == Op::RStore ? Op::RRmw
                                              : Op::MRmw;
    beginStepLocked(rmw_op, by, x);
    double cost = 0.0;
    Value cur = readCurrentLocked(by, x, &cost);
    if (cur != expected) {
        // Failed CAS == plain read (§3.3).
        requireAllowed(by, Op::Load);
        applyLoadEffectLocked(by, x, cur);
        chargeLocked(cost + cost_.rmwExtra);
        return RmwResult{false, cur};
    }
    requireAllowed(by, rmw_op);
    applyStoreLocked(store_flavour, by, x, desired);
    chargeLocked(cost + store_cost + cost_.rmwExtra);
    maybeEvictLocked();
    return RmwResult{true, cur};
}

RmwResult
CxlSystem::casL(NodeId by, Addr x, Value expected, Value desired)
{
    return casImpl(Op::LStore, by, x, expected, desired, cost_.lstore);
}

RmwResult
CxlSystem::casR(NodeId by, Addr x, Value expected, Value desired)
{
    return casImpl(Op::RStore, by, x, expected, desired,
                   by == config().ownerOf(x) ? cost_.rstoreLocal
                                             : cost_.rstoreRemote);
}

RmwResult
CxlSystem::casM(NodeId by, Addr x, Value expected, Value desired)
{
    return casImpl(Op::MStore, by, x, expected, desired,
                   by == config().ownerOf(x) ? cost_.mstoreLocal
                                             : cost_.mstoreRemote);
}

Value
CxlSystem::faaImpl(Op store_flavour, NodeId by, Addr x, Value delta,
                   double store_cost)
{
    std::lock_guard<std::mutex> guard(mu_);
    Op rmw_op = store_flavour == Op::LStore  ? Op::LRmw
                : store_flavour == Op::RStore ? Op::RRmw
                                              : Op::MRmw;
    beginStepLocked(rmw_op, by, x);
    requireAllowed(by, rmw_op);
    double cost = 0.0;
    Value cur = readCurrentLocked(by, x, &cost);
    applyStoreLocked(store_flavour, by, x, cur + delta);
    chargeLocked(cost + store_cost + cost_.rmwExtra);
    maybeEvictLocked();
    return cur;
}

Value
CxlSystem::faaL(NodeId by, Addr x, Value delta)
{
    return faaImpl(Op::LStore, by, x, delta, cost_.lstore);
}

Value
CxlSystem::faaR(NodeId by, Addr x, Value delta)
{
    return faaImpl(Op::RStore, by, x, delta,
                   by == config().ownerOf(x) ? cost_.rstoreLocal
                                             : cost_.rstoreRemote);
}

Value
CxlSystem::faaM(NodeId by, Addr x, Value delta)
{
    return faaImpl(Op::MStore, by, x, delta,
                   by == config().ownerOf(x) ? cost_.mstoreLocal
                                             : cost_.mstoreRemote);
}

void
CxlSystem::crash(NodeId node)
{
    std::lock_guard<std::mutex> guard(mu_);
    crashLocked(node);
}

void
CxlSystem::crashLocked(NodeId node)
{
    if (node >= config().numNodes())
        CXL0_FATAL("crash on unknown node ", node);
    state_.clearCache(node);
    bool poison = model_.variant() == model::ModelVariant::Psn;
    bool volatile_mem = !config().isPersistent(node);
    if (volatile_mem || poison) {
        for (Addr x = 0; x < config().numAddrs(); ++x) {
            if (config().ownerOf(x) != node)
                continue;
            if (volatile_mem)
                state_.setMemory(x, kInitValue);
            if (poison)
                state_.invalidateEverywhere(x);
        }
    }
    // Unfenced async flushes die with the machine, exactly like
    // unretired CLFLUSHOPTs on a crash.
    pendingFlush_[node].clear();
    epoch_[node] += 1;
}

uint64_t
CxlSystem::epoch(NodeId node) const
{
    std::lock_guard<std::mutex> guard(mu_);
    return epoch_[node];
}

void
CxlSystem::armCrash(uint64_t step, NodeId node)
{
    std::lock_guard<std::mutex> guard(mu_);
    if (node >= config().numNodes())
        CXL0_FATAL("armCrash on unknown node ", node);
    armed_.push_back(ArmedCrash{step, node, false});
}

bool
CxlSystem::armedCrashesFired() const
{
    std::lock_guard<std::mutex> guard(mu_);
    for (const ArmedCrash &a : armed_)
        if (!a.fired)
            return false;
    return true;
}

void
CxlSystem::enableStepTrace(bool on)
{
    std::lock_guard<std::mutex> guard(mu_);
    traceSteps_ = on;
    trace_.clear();
    evictions_.clear();
}

std::vector<StepRecord>
CxlSystem::stepTrace() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return trace_;
}

std::vector<EvictEvent>
CxlSystem::evictionTrace() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return evictions_;
}

void
CxlSystem::setEvictionReplay(std::vector<EvictEvent> schedule)
{
    std::lock_guard<std::mutex> guard(mu_);
    replayEvictions_ = true;
    replay_ = std::move(schedule);
    replayNext_ = 0;
}

void
CxlSystem::evictOne()
{
    std::lock_guard<std::mutex> guard(mu_);
    // Force one eviction regardless of policy (testing hook).
    std::vector<std::pair<NodeId, Addr>> candidates;
    for (NodeId i = 0; i < config().numNodes(); ++i)
        for (Addr x = 0; x < config().numAddrs(); ++x)
            if (state_.cacheValid(i, x))
                candidates.emplace_back(i, x);
    if (candidates.empty())
        return;
    auto [i, x] = candidates[rng_.nextBelow(candidates.size())];
    evictEntryLocked(i, x);
}

void
CxlSystem::evictCacheOf(NodeId node)
{
    std::lock_guard<std::mutex> guard(mu_);
    for (Addr x = 0; x < config().numAddrs(); ++x) {
        if (!state_.cacheValid(node, x))
            continue;
        evictEntryLocked(node, x);
    }
}

void
CxlSystem::drainAll()
{
    std::lock_guard<std::mutex> guard(mu_);
    for (Addr x = 0; x < config().numAddrs(); ++x)
        drainLineLocked(x);
}

Value
CxlSystem::peekCache(NodeId node, Addr x) const
{
    std::lock_guard<std::mutex> guard(mu_);
    return state_.cache(node, x);
}

Value
CxlSystem::peekMemory(Addr x) const
{
    std::lock_guard<std::mutex> guard(mu_);
    return state_.memory(x);
}

bool
CxlSystem::invariantHolds() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return state_.invariantHolds();
}

double
CxlSystem::clockNs() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return clockNs_;
}

uint64_t
CxlSystem::opCount() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return opCount_;
}

} // namespace cxl0::runtime
