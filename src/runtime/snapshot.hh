/**
 * @file
 * GPF-based global snapshots (paper §3.2: "a carefully designed
 * algorithm may still employ GPF for snapshots, thanks to its global
 * and blocking properties").
 *
 * takeSnapshot drains every cache with a GPF and copies the then
 * fully-persistent memory image; restore writes an image back with
 * MStores. Together they give coarse-grained checkpoint/rollback on
 * top of CXL0 without any per-object instrumentation.
 */

#ifndef CXL0_RUNTIME_SNAPSHOT_HH
#define CXL0_RUNTIME_SNAPSHOT_HH

#include <vector>

#include "runtime/system.hh"

namespace cxl0::runtime
{

/** A consistent global memory image. */
struct MemoryImage
{
    std::vector<Value> memory; //!< one entry per address

    bool
    operator==(const MemoryImage &other) const = default;
};

/**
 * Drain all caches (GPF issued by `by`) and capture the memory image.
 * Because GPF blocks until every cache is empty, the image is exactly
 * the state a full-system restart would recover.
 */
MemoryImage takeSnapshot(CxlSystem &sys, NodeId by);

/**
 * Write an image back (MStore per cell, issued by `by`), restoring
 * the system to the snapshot's persistent state. Caches are
 * invalidated by the MStores themselves.
 */
void restoreSnapshot(CxlSystem &sys, NodeId by, const MemoryImage &img);

/**
 * Difference report: addresses whose current persistent value (after
 * a fresh GPF) differs from the image. Useful for incremental
 * checkpointing studies.
 */
std::vector<Addr> diffSnapshot(CxlSystem &sys, NodeId by,
                               const MemoryImage &img);

} // namespace cxl0::runtime

#endif // CXL0_RUNTIME_SNAPSHOT_HH
