#include "check/cache.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hashmix.hh"
#include "common/logging.hh"
#include "obs/telemetry.hh"

namespace cxl0::check
{

namespace
{

const char *kReportHeader = "cxl0report v1";
const char *kDiskHeader = "cxl0cache v1";

const char *
verdictWord(CheckVerdict v)
{
    switch (v) {
    case CheckVerdict::Pass:
        return "pass";
    case CheckVerdict::Fail:
        return "fail";
    case CheckVerdict::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

bool
verdictFromWord(const std::string &w, CheckVerdict &out)
{
    if (w == "pass")
        out = CheckVerdict::Pass;
    else if (w == "fail")
        out = CheckVerdict::Fail;
    else if (w == "inconclusive")
        out = CheckVerdict::Inconclusive;
    else
        return false;
    return true;
}

bool
opFromName(const std::string &name, model::Op &out)
{
    static const model::Op kOps[] = {
        model::Op::Load,   model::Op::LStore, model::Op::RStore,
        model::Op::MStore, model::Op::LFlush, model::Op::RFlush,
        model::Op::Gpf,    model::Op::LRmw,   model::Op::RRmw,
        model::Op::MRmw,   model::Op::Crash,  model::Op::Tau,
    };
    for (model::Op op : kOps) {
        if (name == model::opName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

/** Backslash/newline escaping keeps the description one line. */
std::string
escapeLine(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
unescapeLine(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            out += s[i] == 'n' ? '\n' : s[i];
        } else {
            out += s[i];
        }
    }
    return out;
}

} // namespace

std::string
serializeReport(const CheckReport &report)
{
    std::ostringstream os;
    os << kReportHeader << "\n";
    os << "verdict " << verdictWord(report.verdict) << "\n";
    os << "truncated " << (report.truncated ? 1 : 0) << "\n";
    os << "timed-out " << (report.timedOut ? 1 : 0) << "\n";
    os << "configs-visited " << report.stats.configsVisited << "\n";
    os << "tau-skipped " << report.stats.tauMovesSkipped << "\n";
    os << "ample-skipped " << report.stats.ampleSkipped << "\n";
    os << "outcomes " << report.outcomes.size() << "\n";
    for (const Outcome &o : report.outcomes) {
        os << "o " << o.crashedThreads << " " << o.regs.size();
        for (const std::vector<Value> &regs : o.regs) {
            os << " " << regs.size();
            for (Value v : regs)
                os << " " << v;
        }
        os << "\n";
    }
    os << "cex-labels " << report.counterexample.trace.size() << "\n";
    for (const model::Label &l : report.counterexample.trace)
        os << "l " << model::opName(l.op) << " " << l.node << " "
           << l.addr << " " << l.value << " " << l.expected << "\n";
    os << "cex-desc "
       << escapeLine(report.counterexample.description) << "\n";
    return os.str();
}

namespace
{

/** Pull the next '\n'-terminated line out of `text` at `pos`. */
bool
nextLine(const std::string &text, size_t &pos, std::string &line)
{
    if (pos >= text.size())
        return false;
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos)
        return false; // every serialized line is newline-terminated
    line.assign(text, pos, nl - pos);
    pos = nl + 1;
    return true;
}

/** Parse "<tag> <rest>" lines; false when the tag mismatches. */
bool
tagged(const std::string &line, const char *tag, std::string &rest)
{
    size_t n = std::string(tag).size();
    if (line.compare(0, n, tag) != 0)
        return false;
    if (line.size() == n) {
        rest.clear();
        return true;
    }
    if (line[n] != ' ')
        return false;
    rest.assign(line, n + 1, std::string::npos);
    return true;
}

} // namespace

bool
parseReport(const std::string &text, CheckReport &out)
{
    out = CheckReport{};
    size_t pos = 0;
    std::string line, rest;
    if (!nextLine(text, pos, line) || line != kReportHeader)
        return false;
    if (!nextLine(text, pos, line) || !tagged(line, "verdict", rest) ||
        !verdictFromWord(rest, out.verdict))
        return false;
    if (!nextLine(text, pos, line) ||
        !tagged(line, "truncated", rest))
        return false;
    out.truncated = rest == "1";
    if (!nextLine(text, pos, line) ||
        !tagged(line, "timed-out", rest))
        return false;
    out.timedOut = rest == "1";

    auto counter = [&](const char *tag, size_t &dst) {
        if (!nextLine(text, pos, line) || !tagged(line, tag, rest))
            return false;
        dst = static_cast<size_t>(std::strtoull(rest.c_str(),
                                                nullptr, 10));
        return true;
    };
    if (!counter("configs-visited", out.stats.configsVisited) ||
        !counter("tau-skipped", out.stats.tauMovesSkipped) ||
        !counter("ample-skipped", out.stats.ampleSkipped))
        return false;

    size_t n_outcomes = 0;
    if (!counter("outcomes", n_outcomes))
        return false;
    for (size_t i = 0; i < n_outcomes; ++i) {
        if (!nextLine(text, pos, line) || !tagged(line, "o", rest))
            return false;
        std::istringstream is(rest);
        Outcome o;
        size_t nthreads = 0;
        if (!(is >> o.crashedThreads >> nthreads))
            return false;
        o.regs.resize(nthreads);
        for (size_t t = 0; t < nthreads; ++t) {
            size_t nregs = 0;
            if (!(is >> nregs))
                return false;
            o.regs[t].resize(nregs);
            for (size_t r = 0; r < nregs; ++r)
                if (!(is >> o.regs[t][r]))
                    return false;
        }
        out.outcomes.insert(std::move(o));
    }

    size_t n_labels = 0;
    if (!counter("cex-labels", n_labels))
        return false;
    for (size_t i = 0; i < n_labels; ++i) {
        if (!nextLine(text, pos, line) || !tagged(line, "l", rest))
            return false;
        std::istringstream is(rest);
        std::string opname;
        model::Label l;
        long long node, addr, value, expected;
        if (!(is >> opname >> node >> addr >> value >> expected))
            return false;
        if (!opFromName(opname, l.op))
            return false;
        l.node = static_cast<NodeId>(node);
        l.addr = static_cast<Addr>(addr);
        l.value = static_cast<Value>(value);
        l.expected = static_cast<Value>(expected);
        out.counterexample.trace.push_back(l);
    }
    if (!nextLine(text, pos, line) || !tagged(line, "cex-desc", rest))
        return false;
    out.counterexample.description = unescapeLine(rest);
    return pos == text.size();
}

uint64_t
hashKey(std::string_view key)
{
    // FNV-1a over the bytes, finished with the splitmix64 mixer the
    // rest of the engine hashes with. Filename-grade only: disk
    // entries embed and verify the full key.
    uint64_t h = 0xcbf29ce484222325ULL ^
                 (static_cast<uint64_t>(key.size()) *
                  0x9e3779b97f4a7c15ULL);
    for (char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mixBits(h);
}

ResultCache::ResultCache(size_t capacity, std::string diskDir)
    : capacity_(capacity < 1 ? 1 : capacity),
      diskDir_(std::move(diskDir))
{
    if (diskDir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(diskDir_, ec);
    if (ec) {
        CXL0_WARN("cache dir '", diskDir_,
                  "' unusable (", ec.message(),
                  "); disk store disabled");
        diskDir_.clear();
    }
}

std::string
ResultCache::diskPath(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016" PRIx64 ".res",
                  hashKey(key));
    return diskDir_ + "/" + name;
}

void
ResultCache::insertFront(const std::string &key, std::string value)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::optional<std::string>
ResultCache::lookup(const std::string &key)
{
    auto hit = [](const char *name) {
        if (obs::Telemetry *t = obs::current()) {
            t->countCacheHit();
            if (obs::TraceRing *r = obs::threadRing())
                r->instant(name);
        }
    };
    auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        hit("cache-hit");
        return it->second->second;
    }
    if (!diskDir_.empty()) {
        if (auto v = diskLookup(key)) {
            ++stats_.hits;
            ++stats_.diskHits;
            hit("cache-hit-disk");
            insertFront(key, *v);
            return v;
        }
    }
    ++stats_.misses;
    if (obs::Telemetry *t = obs::current()) {
        t->countCacheMiss();
        if (obs::TraceRing *r = obs::threadRing())
            r->instant("cache-miss");
    }
    return std::nullopt;
}

void
ResultCache::store(const std::string &key, const std::string &value)
{
    insertFront(key, value);
    if (!diskDir_.empty())
        diskStore(key, value);
}

std::optional<std::string>
ResultCache::diskLookup(const std::string &key)
{
    std::string path = diskPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return std::nullopt; // plain miss, not corruption
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    // Header: "cxl0cache v1\nkey <n>\n<n key bytes>\nvalue <m>\n
    // <m value bytes>\n" — length-prefixed so keys with newlines
    // survive, full key compared so hash collisions are misses.
    size_t pos = 0;
    std::string line, rest;
    auto corrupt = [&]() -> std::optional<std::string> {
        ++stats_.corrupt;
        CXL0_WARN("corrupted cache entry '", path,
                  "'; recomputing");
        return std::nullopt;
    };
    if (!nextLine(text, pos, line) || line != kDiskHeader)
        return corrupt();
    if (!nextLine(text, pos, line) || !tagged(line, "key", rest))
        return corrupt();
    size_t klen = static_cast<size_t>(
        std::strtoull(rest.c_str(), nullptr, 10));
    if (pos + klen + 1 > text.size() || text[pos + klen] != '\n')
        return corrupt();
    if (text.compare(pos, klen, key) != 0) {
        // A different key hashed to this file: benign collision.
        ++stats_.corrupt;
        return std::nullopt;
    }
    pos += klen + 1;
    if (!nextLine(text, pos, line) || !tagged(line, "value", rest))
        return corrupt();
    size_t vlen = static_cast<size_t>(
        std::strtoull(rest.c_str(), nullptr, 10));
    if (pos + vlen + 1 != text.size() || text[pos + vlen] != '\n')
        return corrupt();
    return text.substr(pos, vlen);
}

void
ResultCache::diskStore(const std::string &key,
                       const std::string &value)
{
    std::string path = diskPath(key);
    std::string tmp = path + ".tmp";
    {
        std::ofstream outf(tmp, std::ios::binary |
                                    std::ios::trunc);
        if (!outf.is_open()) {
            CXL0_WARN("cannot write cache entry '", tmp,
                      "'; disk store disabled");
            diskDir_.clear();
            return;
        }
        outf << kDiskHeader << "\n";
        outf << "key " << key.size() << "\n" << key << "\n";
        outf << "value " << value.size() << "\n" << value << "\n";
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        CXL0_WARN("cannot publish cache entry '", path, "' (",
                  ec.message(), ")");
        std::filesystem::remove(tmp, ec);
        return;
    }
    ++stats_.diskWrites;
}

} // namespace cxl0::check
