/**
 * @file
 * Program-level model checking over CXL0.
 *
 * Litmus traces fix one serialization; the Explorer instead takes a
 * small multi-threaded *program* (straight-line CXL0 instructions with
 * registers) and enumerates every interleaving, every placement of tau
 * propagation, and every placement of machine crashes within a budget.
 * It returns the set of reachable final outcomes (register values plus
 * which machines crashed), which is how we check assertion-style
 * properties such as §6's motivating example and the durability of the
 * FliT transformation at the model level.
 *
 * The hot path is hash-consed: model states and register files are
 * interned once (model/state_table.hh) and the search works over
 * 32-byte packed configurations, generating successors by in-place
 * mutation of a scratch state instead of deep-copying whole
 * configurations. See src/check/README.md for the architecture and
 * the soundness argument of the tau reduction.
 */

#ifndef CXL0_CHECK_EXPLORER_HH
#define CXL0_CHECK_EXPLORER_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "model/semantics.hh"

namespace cxl0::check
{

using model::Cxl0Model;
using model::Op;

/** An immediate value or a register reference. */
struct Operand
{
    bool isReg = false;
    Value imm = 0;
    int reg = 0;

    static Operand immediate(Value v) { return {false, v, 0}; }
    static Operand regRef(int r) { return {true, 0, r}; }

    Value eval(const Value *regs) const
    {
        return isReg ? regs[reg] : imm;
    }

    Value eval(const std::vector<Value> &regs) const
    {
        return eval(regs.data());
    }
};

/** One straight-line program instruction. */
struct ProgInstr
{
    enum class Kind { Load, Store, Flush, Gpf, Cas, Faa };

    Kind kind = Kind::Load;
    /** Flavour: LStore/RStore/MStore, LFlush/RFlush, LRmw/RRmw/MRmw. */
    Op op = Op::Load;
    Addr addr = 0;
    Operand value{};    //!< store value / CAS desired / FAA delta
    Operand expected{}; //!< CAS expected
    int dest = -1;      //!< destination register (Load/Cas/Faa)

    static ProgInstr load(Addr x, int dest_reg);
    static ProgInstr store(Op flavour, Addr x, Operand v);
    static ProgInstr flush(Op flavour, Addr x);
    static ProgInstr gpf();
    /** dest receives 1 on success, 0 on failure. */
    static ProgInstr cas(Op flavour, Addr x, Operand expect,
                         Operand desired, int dest_reg);
    /** dest receives the old value. */
    static ProgInstr faa(Op flavour, Addr x, Operand delta,
                         int dest_reg);
};

/** A thread: a machine it runs on and its code. */
struct ProgThread
{
    NodeId node;
    std::vector<ProgInstr> code;
};

/** A whole program. */
struct Program
{
    std::vector<ProgThread> threads;
    /** Registers per thread (register indices must stay below this). */
    int numRegs = 4;
};

/** A final outcome of one complete execution. */
struct Outcome
{
    /** Final register file of each thread; crashed threads keep the
     *  registers they had when their machine failed. */
    std::vector<std::vector<Value>> regs;
    /** Bit i set when thread i's machine crashed before it finished. */
    uint32_t crashedThreads = 0;

    bool operator<(const Outcome &other) const;
    bool operator==(const Outcome &other) const;
    std::string describe() const;
};

/** Exploration options. */
struct ExploreOptions
{
    /** Max crash events per machine over the whole execution. */
    int maxCrashesPerNode = 0;
    /** Machines permitted to crash; empty = all machines. */
    std::vector<NodeId> crashableNodes;
    /**
     * Safety valve on explored configurations. When the limit is hit
     * the search stops adding configurations, finishes draining what
     * it has, and reports truncated=true with the partial outcome set
     * (it no longer aborts the process).
     */
    size_t maxConfigs = 2'000'000;
    /**
     * Skip tau moves on addresses that no live thread's remaining
     * code can ever touch again (and no GPF is pending). Sound: such
     * moves only shuffle lines the program will never observe, so
     * every outcome stays reachable — see src/check/README.md. Off
     * switch exists for A/B validation and debugging.
     */
    bool reduceTau = true;
};

/** Counters describing one exploration run. */
struct ExploreStats
{
    /** Configurations popped and expanded. */
    size_t configsVisited = 0;
    /** Distinct packed configurations in the visited set. */
    size_t configsInterned = 0;
    /** Distinct model states in the interning table. */
    size_t statesInterned = 0;
    /** Resident bytes of visited set + interning tables + stack. */
    size_t peakVisitedBytes = 0;
    /** Tau successors pruned by the footprint reduction. */
    size_t tauMovesSkipped = 0;
    /** Wall-clock seconds inside explore(). */
    double seconds = 0.0;
};

/** Result of an exploration: outcomes plus how the run went. */
struct ExploreResult
{
    std::set<Outcome> outcomes;
    /** True when maxConfigs stopped the search early; outcomes is
     *  then a (still valid) subset of the reachable set. */
    bool truncated = false;
    ExploreStats stats;
};

/** Exhaustive explorer; construct once per (model, program). */
class Explorer
{
  public:
    Explorer(const Cxl0Model &model, Program program,
             ExploreOptions options = ExploreOptions{});

    /**
     * All reachable final outcomes, via the interned/packed search.
     * Requires ≤32 threads and packable pc/crash words (any program
     * that exhaustive exploration could realistically finish fits).
     */
    ExploreResult explore() const;

    /**
     * The original deep-copy search kept as an executable reference:
     * no interning, no packing, no tau reduction. Outcome sets must be
     * identical to explore(); regression tests and the scaling bench
     * compare the two.
     */
    ExploreResult exploreReference() const;

    /**
     * Convenience: does some outcome where no thread crashed (or any
     * outcome, when include_crashed) fail the predicate? Returns the
     * failing outcomes.
     */
    std::vector<Outcome>
    outcomesWhere(const std::set<Outcome> &outcomes,
                  bool (*pred)(const Outcome &)) const;

  private:
    const Cxl0Model &model_;
    Program program_;
    ExploreOptions options_;
};

} // namespace cxl0::check

#endif // CXL0_CHECK_EXPLORER_HH
