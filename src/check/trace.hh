/**
 * @file
 * Trace feasibility checking over the CXL0 LTS.
 *
 * The paper presents litmus tests as serialized traces of CXL0
 * primitives "interleaved with additional silent tau-steps" (§3.4).
 * The TraceChecker decides whether such a trace is executable: it
 * tracks the *set* of states reachable after each prefix, closing
 * under tau at every point (a subset construction, which also makes
 * the check deterministic and complete for these finite systems).
 */

#ifndef CXL0_CHECK_TRACE_HH
#define CXL0_CHECK_TRACE_HH

#include <vector>

#include "model/semantics.hh"

namespace cxl0::check
{

using model::Cxl0Model;
using model::Label;
using model::State;

/** Decides feasibility of serialized label traces. */
class TraceChecker
{
  public:
    explicit TraceChecker(const Cxl0Model &model) : model_(model) {}

    /**
     * All states reachable by executing `trace` in order from `init`,
     * with tau steps interleaved anywhere (including before the first
     * and after the last label). Empty result means infeasible.
     */
    std::vector<State> statesAfter(const State &init,
                                   const std::vector<Label> &trace) const;

    /** Feasibility from the model's initial state. */
    bool feasible(const std::vector<Label> &trace) const;

    /** Feasibility from a caller-provided state. */
    bool feasibleFrom(const State &init,
                      const std::vector<Label> &trace) const;

    /**
     * Index of the first label with no enabled execution (size() when
     * the whole trace is feasible). Useful diagnostics for tests.
     */
    size_t firstBlockedIndex(const State &init,
                             const std::vector<Label> &trace) const;

  private:
    const Cxl0Model &model_;
};

} // namespace cxl0::check

#endif // CXL0_CHECK_TRACE_HH
