/**
 * @file
 * Trace feasibility checking over the CXL0 LTS.
 *
 * The paper presents litmus tests as serialized traces of CXL0
 * primitives "interleaved with additional silent tau-steps" (§3.4).
 * The TraceChecker decides whether such a trace is executable: it
 * tracks the *set* of states reachable after each prefix, closing
 * under tau at every point (a subset construction, which also makes
 * the check deterministic and complete for these finite systems).
 *
 * The subset construction runs on the unified engine layering
 * (check/engine.hh): a SearchEngine is one shared ModelContext plus
 * one ShardEngine worker, each prefix's state set is an interned
 * frame (a 4-byte id over the context's state table), tau closures
 * are memoized per frame, and no vector<State> is copied per step.
 * checkTraceFeasible() is the uniform Request/Report entry point; the
 * TraceChecker methods remain as the ergonomic per-model facade. A
 * serialized trace is one dependency chain, so
 * CheckRequest::numThreads is accepted but the walk always runs one
 * worker (sharding has nothing to fan out).
 */

#ifndef CXL0_CHECK_TRACE_HH
#define CXL0_CHECK_TRACE_HH

#include <vector>

#include "check/engine.hh"
#include "model/semantics.hh"

namespace cxl0::check
{

using model::Cxl0Model;
using model::Label;
using model::State;

/**
 * The one subset-construction step walk every trace-shaped checker
 * uses: the tau-closed frame reachable after `trace` from `init`
 * through `eng`, or model::kNoFrameId when some label has no enabled
 * execution. TraceChecker::frameAfter and checkTraceInclusion's
 * per-start-state walks both delegate here.
 */
model::FrameId frameAfterWalk(ShardEngine &eng, const State &init,
                              const std::vector<Label> &trace);

/**
 * Unified entry point: is `trace` executable from the model's initial
 * state (tau steps interleaved anywhere)? Pass = feasible; Fail =
 * infeasible, with the blocking index and label in the
 * counterexample; Inconclusive = the state budget in `request`
 * truncated the subset construction.
 */
CheckReport checkTraceFeasible(const Cxl0Model &model,
                               const std::vector<Label> &trace,
                               const CheckRequest &request = {},
                               ModelContext *shared = nullptr);

/**
 * As above, from a caller-provided start state. When `shared` is
 * given it must be built over the same model; the prefix walk then
 * interns into its tables (persistent across requests — the serve
 * seam). Verdicts are value-identical either way.
 */
CheckReport checkTraceFeasibleFrom(const Cxl0Model &model,
                                   const State &init,
                                   const std::vector<Label> &trace,
                                   const CheckRequest &request = {},
                                   ModelContext *shared = nullptr);

/**
 * Decides feasibility of serialized label traces. Holds a
 * SearchEngine so closures computed for one query are reused by the
 * next (prefix walks re-derive the same frames constantly). Not
 * thread-safe; use one checker per thread.
 */
class TraceChecker
{
  public:
    explicit TraceChecker(const Cxl0Model &model)
        : model_(model), engine_(model)
    {
    }

    /**
     * All states reachable by executing `trace` in order from `init`,
     * with tau steps interleaved anywhere (including before the first
     * and after the last label). Empty result means infeasible.
     */
    std::vector<State> statesAfter(const State &init,
                                   const std::vector<Label> &trace) const;

    /** Feasibility from the model's initial state. */
    bool feasible(const std::vector<Label> &trace) const;

    /** Feasibility from a caller-provided state. */
    bool feasibleFrom(const State &init,
                      const std::vector<Label> &trace) const;

    /**
     * Index of the first label with no enabled execution (size() when
     * the whole trace is feasible). Useful diagnostics for tests.
     */
    size_t firstBlockedIndex(const State &init,
                             const std::vector<Label> &trace) const;

    /**
     * The frame (interned state set) reachable after `trace` from
     * `init`, tau-closed; model::kNoFrameId when infeasible. The
     * frame-level view other checkers (inclusion) build on.
     */
    model::FrameId frameAfter(const State &init,
                              const std::vector<Label> &trace) const;

    /** The engine backing this checker (tables, memos). */
    SearchEngine &engine() const { return engine_; }

  private:
    const Cxl0Model &model_;
    /** Mutable: queries are logically const but grow the memo tables
     *  (the same interning pattern the explorer uses). */
    mutable SearchEngine engine_;
};

} // namespace cxl0::check

#endif // CXL0_CHECK_TRACE_HH
