/**
 * @file
 * Content-addressed result cache over the CheckReport vocabulary.
 *
 * The scenario DSL's canonical dumper makes every scenario its own
 * content key (`parse(dump(p)) == p`), and every checker speaks
 * CheckRequest/CheckReport — so one cache can front all four: the key
 * is the full canonical text (scenario dump + canonical request +
 * checker route, built by lang::cacheKey), and the value is the
 * *deterministic projection* of the CheckReport serialized by
 * serializeReport.
 *
 * Deterministic projection: verdict, truncation flags, outcome set,
 * counterexample, and the schedule-invariant counters
 * (configsVisited / tauMovesSkipped / ampleSkipped — all pure
 * functions of the reduced search graph). Wall-clock, RSS, steal
 * counters, and table sizes (which depend on how warm a pooled
 * context is) are excluded — configsInterned among them: the trace
 * checkers report it from the shared frame table, so it grows with
 * pool warmth — which is what makes "a cache hit
 * is byte-identical to a recompute" a testable gate rather than a
 * race. Timed-out or truncated reports are never stored: a
 * wall-clock cut is not reproducible, and a budget cut at
 * numThreads > 1 depends on scheduling.
 *
 * Storage is a capacity-bounded in-memory LRU, optionally backed by
 * an on-disk store (one file per entry, named by a 64-bit hash of
 * the key). Disk entries embed the full key and are verified on
 * load, so a hash collision or a corrupted/truncated file is a
 * counted miss + warning, never a wrong answer.
 *
 * Not thread-safe: one cache per serving thread.
 */

#ifndef CXL0_CHECK_CACHE_HH
#define CXL0_CHECK_CACHE_HH

#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "check/engine.hh"

namespace cxl0::check
{

/**
 * The deterministic projection of `report` in a canonical line-based
 * text form ("cxl0report v1"). Two runs of the same request at the
 * same thread count serialize identically; numThreads=1 runs are
 * deterministic unconditionally.
 */
std::string serializeReport(const CheckReport &report);

/**
 * Inverse of serializeReport over its image; false on malformed
 * input (out is then partially filled and must be discarded).
 * serializeReport(parsed) == input is a tested round-trip.
 */
bool parseReport(const std::string &text, CheckReport &out);

/** 64-bit content hash of a cache key (filename-grade; the full key
 *  is verified on every disk load, so collisions are benign). */
uint64_t hashKey(std::string_view key);

struct CacheStats
{
    size_t hits = 0;       //!< lookups served (memory or disk)
    size_t misses = 0;     //!< lookups that found nothing
    size_t evictions = 0;  //!< LRU entries dropped at capacity
    size_t diskHits = 0;   //!< hits that came from the disk store
    size_t diskWrites = 0; //!< entries persisted to disk
    size_t corrupt = 0;    //!< unreadable / mismatching disk entries
};

class ResultCache
{
  public:
    /**
     * `capacity` bounds the in-memory LRU (>= 1). A non-empty
     * `diskDir` enables the on-disk store (created if missing);
     * an unusable directory warns once and degrades to memory-only.
     */
    explicit ResultCache(size_t capacity, std::string diskDir = "");

    /** The serialized value for `key`, refreshing LRU recency. */
    std::optional<std::string> lookup(const std::string &key);

    /** Insert/refresh `key`; evicts LRU tail beyond capacity and
     *  mirrors to the disk store when one is configured. */
    void store(const std::string &key, const std::string &value);

    const CacheStats &stats() const { return stats_; }
    size_t size() const { return lru_.size(); }
    size_t capacity() const { return capacity_; }

  private:
    std::optional<std::string> diskLookup(const std::string &key);
    void diskStore(const std::string &key, const std::string &value);
    std::string diskPath(const std::string &key) const;
    void insertFront(const std::string &key, std::string value);

    size_t capacity_;
    std::string diskDir_;
    /** front = most recently used. */
    std::list<std::pair<std::string, std::string>> lru_;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        index_;
    CacheStats stats_;
};

} // namespace cxl0::check

#endif // CXL0_CHECK_CACHE_HH
