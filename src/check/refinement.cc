#include "check/refinement.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"
#include "model/state_table.hh"

namespace cxl0::check
{

using cxl0::Addr;
using model::Cxl0Model;
using model::Label;
using model::Op;
using model::State;
using cxl0::Value;

Alphabet
Alphabet::standard(const model::SystemConfig &cfg)
{
    Alphabet a;
    a.ops = {Op::Load, Op::LStore, Op::RStore, Op::MStore, Op::LFlush,
             Op::RFlush, Op::Crash};
    a.values = {0, 1};
    a.nodes.clear();
    for (NodeId n = 0; n < cfg.numNodes(); ++n)
        a.nodes.push_back(n);
    return a;
}

std::string
RefinementResult::describe() const
{
    if (refines)
        return "refines";
    std::ostringstream os;
    os << "counterexample: [" << model::describeTrace(counterexample)
       << "]";
    return os.str();
}

namespace
{

/** Candidate visible labels over the alphabet. */
std::vector<Label>
candidates(const model::SystemConfig &cfg, const Alphabet &alphabet)
{
    std::vector<NodeId> nodes = alphabet.nodes;
    if (nodes.empty())
        for (NodeId n = 0; n < cfg.numNodes(); ++n)
            nodes.push_back(n);

    std::vector<Label> out;
    for (NodeId i : nodes) {
        for (Op op : alphabet.ops) {
            switch (op) {
              case Op::Load:
                for (Addr x = 0; x < cfg.numAddrs(); ++x)
                    for (Value v : alphabet.values)
                        out.push_back(Label::load(i, x, v));
                break;
              case Op::LStore:
              case Op::RStore:
              case Op::MStore:
                for (Addr x = 0; x < cfg.numAddrs(); ++x)
                    for (Value v : alphabet.values)
                        out.push_back(Label{op, i, x, v, 0});
                break;
              case Op::LRmw:
              case Op::RRmw:
              case Op::MRmw:
                for (Addr x = 0; x < cfg.numAddrs(); ++x)
                    for (Value old_v : alphabet.values)
                        for (Value new_v : alphabet.values)
                            out.push_back(Label{op, i, x, new_v, old_v});
                break;
              case Op::LFlush:
              case Op::RFlush:
                for (Addr x = 0; x < cfg.numAddrs(); ++x)
                    out.push_back(Label{op, i, x, 0, 0});
                break;
              case Op::Gpf:
                out.push_back(Label::gpf(i));
                break;
              case Op::Crash:
                out.push_back(Label::crash(i));
                break;
              case Op::Tau:
                break;
            }
        }
    }
    return out;
}

/** Deduplicated tau-closure over a set of states. */
std::vector<State>
closure(const Cxl0Model &m, const std::vector<State> &states)
{
    model::StateTable table(m.config().numNodes(),
                            m.config().numAddrs());
    std::vector<State> out;
    for (const State &s : states) {
        for (State &c : m.tauClosure(s)) {
            bool fresh = false;
            table.intern(c, &fresh);
            if (fresh)
                out.push_back(std::move(c));
        }
    }
    return out;
}

/** Apply a label across a state set (no closure). */
std::vector<State>
applyAll(const Cxl0Model &m, const std::vector<State> &states,
         const Label &label)
{
    std::vector<State> out;
    for (const State &s : states)
        if (auto succ = m.apply(s, label))
            out.push_back(std::move(*succ));
    return out;
}

struct SearchFrame
{
    std::vector<State> spec; // tau-closed
    std::vector<State> impl; // tau-closed
    std::vector<Label> trace;
    std::vector<int> crashBudget;
};

/**
 * Order-insensitive hash over a (spec set, impl set, budget) triple,
 * used to prune revisits of the same determinized pair.
 */
uint64_t
frameKey(const SearchFrame &f)
{
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    uint64_t spec_mix = 0, impl_mix = 0;
    for (const State &s : f.spec)
        spec_mix += s.hash() * 0x100000001b3ULL + 1;
    for (const State &s : f.impl)
        impl_mix += s.hash() * 0x100000001b3ULL + 1;
    h ^= spec_mix + (h << 6);
    h ^= impl_mix * 31 + (h >> 3);
    for (int b : f.crashBudget)
        h = h * 131 + static_cast<uint64_t>(b + 1);
    return h;
}

} // namespace

RefinementResult
checkRefinement(const Cxl0Model &spec, const Cxl0Model &impl,
                size_t depth, const Alphabet &alphabet)
{
    if (spec.config().numNodes() != impl.config().numNodes() ||
        spec.config().numAddrs() != impl.config().numAddrs()) {
        CXL0_FATAL("refinement requires same-shape configurations");
    }
    std::vector<Label> labels = candidates(impl.config(), alphabet);

    SearchFrame root;
    root.spec = closure(spec, {spec.initialState()});
    root.impl = closure(impl, {impl.initialState()});
    root.crashBudget.assign(impl.config().numNodes(),
                            alphabet.maxCrashesPerNode);

    // Memo: deepest remaining-depth already explored per frame key.
    std::unordered_map<uint64_t, size_t> explored;

    std::vector<SearchFrame> stack{root};
    while (!stack.empty()) {
        SearchFrame cur = std::move(stack.back());
        stack.pop_back();
        if (cur.trace.size() >= depth)
            continue;
        size_t remaining = depth - cur.trace.size();
        uint64_t key = frameKey(cur);
        auto it = explored.find(key);
        if (it != explored.end() && it->second >= remaining)
            continue;
        explored[key] = remaining;
        for (const Label &label : labels) {
            if (label.op == Op::Crash &&
                cur.crashBudget[label.node] <= 0) {
                continue;
            }
            std::vector<State> impl_next =
                applyAll(impl, cur.impl, label);
            if (impl_next.empty())
                continue; // impl cannot take this label
            std::vector<State> spec_next =
                applyAll(spec, cur.spec, label);
            std::vector<Label> trace = cur.trace;
            trace.push_back(label);
            if (spec_next.empty()) {
                RefinementResult r;
                r.refines = false;
                r.counterexample = std::move(trace);
                return r;
            }
            SearchFrame next;
            next.spec = closure(spec, spec_next);
            next.impl = closure(impl, impl_next);
            next.trace = std::move(trace);
            next.crashBudget = cur.crashBudget;
            if (label.op == Op::Crash)
                next.crashBudget[label.node] -= 1;
            stack.push_back(std::move(next));
        }
    }
    return RefinementResult{};
}

std::vector<std::vector<Label>>
enumerateTraces(const Cxl0Model &m, size_t depth, const Alphabet &alphabet)
{
    std::vector<Label> labels = candidates(m.config(), alphabet);
    std::vector<std::vector<Label>> out;

    SearchFrame root;
    root.impl = closure(m, {m.initialState()});
    root.crashBudget.assign(m.config().numNodes(),
                            alphabet.maxCrashesPerNode);

    std::vector<SearchFrame> stack{root};
    out.push_back({}); // the empty trace
    while (!stack.empty()) {
        SearchFrame cur = std::move(stack.back());
        stack.pop_back();
        if (cur.trace.size() >= depth)
            continue;
        for (const Label &label : labels) {
            if (label.op == Op::Crash &&
                cur.crashBudget[label.node] <= 0) {
                continue;
            }
            std::vector<State> next_states =
                applyAll(m, cur.impl, label);
            if (next_states.empty())
                continue;
            SearchFrame next;
            next.impl = closure(m, next_states);
            next.trace = cur.trace;
            next.trace.push_back(label);
            next.crashBudget = cur.crashBudget;
            if (label.op == Op::Crash)
                next.crashBudget[label.node] -= 1;
            out.push_back(next.trace);
            stack.push_back(std::move(next));
        }
    }
    return out;
}

} // namespace cxl0::check
