#include "check/refinement.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "common/hashmix.hh"
#include "common/logging.hh"
#include "common/segmented.hh"
#include "model/state_table.hh"
#include "obs/telemetry.hh"

namespace cxl0::check
{

using cxl0::Addr;
using cxl0::Value;
using model::Cxl0Model;
using model::FrameId;
using model::kNoFrameId;
using model::Label;
using model::Op;
using model::State;

Alphabet
Alphabet::standard(const model::SystemConfig &cfg)
{
    Alphabet a;
    a.ops = {Op::Load, Op::LStore, Op::RStore, Op::MStore, Op::LFlush,
             Op::RFlush, Op::Crash};
    a.values = {0, 1};
    a.nodes.clear();
    for (NodeId n = 0; n < cfg.numNodes(); ++n)
        a.nodes.push_back(n);
    return a;
}

std::string
RefinementResult::describe() const
{
    if (refines)
        return "refines";
    std::ostringstream os;
    os << "counterexample: [" << model::describeTrace(counterexample)
       << "]";
    return os.str();
}

namespace
{

/** Candidate visible labels over the alphabet. */
std::vector<Label>
candidates(const model::SystemConfig &cfg, const Alphabet &alphabet)
{
    std::vector<NodeId> nodes = alphabet.nodes;
    if (nodes.empty())
        for (NodeId n = 0; n < cfg.numNodes(); ++n)
            nodes.push_back(n);

    std::vector<Label> out;
    for (NodeId i : nodes) {
        for (Op op : alphabet.ops) {
            switch (op) {
              case Op::Load:
                for (Addr x = 0; x < cfg.numAddrs(); ++x)
                    for (Value v : alphabet.values)
                        out.push_back(Label::load(i, x, v));
                break;
              case Op::LStore:
              case Op::RStore:
              case Op::MStore:
                for (Addr x = 0; x < cfg.numAddrs(); ++x)
                    for (Value v : alphabet.values)
                        out.push_back(Label{op, i, x, v, 0});
                break;
              case Op::LRmw:
              case Op::RRmw:
              case Op::MRmw:
                for (Addr x = 0; x < cfg.numAddrs(); ++x)
                    for (Value old_v : alphabet.values)
                        for (Value new_v : alphabet.values)
                            out.push_back(Label{op, i, x, new_v, old_v});
                break;
              case Op::LFlush:
              case Op::RFlush:
                for (Addr x = 0; x < cfg.numAddrs(); ++x)
                    out.push_back(Label{op, i, x, 0, 0});
                break;
              case Op::Gpf:
                out.push_back(Label::gpf(i));
                break;
              case Op::Crash:
                out.push_back(Label::crash(i));
                break;
              case Op::Tau:
                break;
            }
        }
    }
    return out;
}

/** Sentinel for the root of the counterexample-trace DAG. */
constexpr uint32_t kNoTraceNode = static_cast<uint32_t>(-1);

/** One edge of the trace DAG: 8 bytes — an index into the candidate
 *  label vector and the parent node. */
struct TraceNode
{
    uint32_t labelIdx;
    uint32_t parent;
};

/** Rebuild the label sequence ending at `node`. */
std::vector<Label>
rebuildTrace(const std::vector<TraceNode> &nodes,
             const std::vector<Label> &labels, uint32_t node)
{
    std::vector<Label> out;
    for (uint32_t n = node; n != kNoTraceNode; n = nodes[n].parent)
        out.push_back(labels[nodes[n].labelIdx]);
    std::reverse(out.begin(), out.end());
    return out;
}

/**
 * The counterexample-trace DAG shared by every refinement worker:
 * parent-pointer edges appended via one atomic counter into a
 * segmented arena (stable addresses, no reallocation under readers).
 * An edge is written before the configuration carrying its index is
 * handed to any other shard, so the cross-shard inbox mutex orders
 * the write before every transitive read during reconstruction.
 */
class SharedTraceDag
{
  public:
    uint32_t append(uint32_t label_idx, uint32_t parent)
    {
        uint32_t id = size_.fetch_add(1, std::memory_order_acq_rel);
        nodes_.ensure(id + 1);
        nodes_[id] = {label_idx, parent};
        return id;
    }

    std::vector<Label> rebuild(const std::vector<Label> &labels,
                               uint32_t node) const
    {
        std::vector<Label> out;
        for (uint32_t n = node; n != kNoTraceNode;
             n = nodes_[n].parent)
            out.push_back(labels[nodes_[n].labelIdx]);
        std::reverse(out.begin(), out.end());
        return out;
    }

    size_t bytes() const { return nodes_.bytes(); }

  private:
    SegmentedArray<TraceNode, 8> nodes_;
    std::atomic<uint32_t> size_{0};
};

/**
 * One determinized search configuration of the frame-interned walk:
 * a (spec frame, impl frame) pair, the packed per-node crash budgets,
 * the depth, and the trace-DAG node that reached it. 24 bytes; the
 * old SearchFrame deep-copied two vector<State>s, a label vector, and
 * a budget vector per configuration.
 */
struct PairConfig
{
    FrameId spec = kNoFrameId;
    FrameId impl = kNoFrameId;
    uint32_t traceNode = kNoTraceNode;
    uint32_t depth = 0;
    uint64_t crash = 0;
};

/** Exact revisit key: frames are interned, so ids identify the
 *  determinized pair; no hash-only pruning like the old frameKey. */
struct PairKey
{
    uint32_t spec;
    uint32_t impl;
    uint64_t crash;

    bool operator==(const PairKey &other) const = default;
};

struct PairKeyHash
{
    size_t
    operator()(const PairKey &k) const
    {
        uint64_t h = mixBits(
            (static_cast<uint64_t>(k.spec) << 32) ^ k.impl);
        return static_cast<size_t>(mixBits(h ^ k.crash));
    }
};

/**
 * PairConfigs ride the generic 32-byte PackedConfig through the
 * sharded frontier (the slot reuse the engine header documents):
 * {spec, impl, traceNode, depth, crash} map onto
 * {state, regs, pc, alive, crash}. The sleep word stays 0: sleep
 * sets are an explorer-only reduction, and FlatConfigSet's
 * intersect-on-arrival admission degenerates to plain member lookup
 * when every arrival carries an empty word.
 */
PackedConfig
packPair(const PairConfig &p)
{
    PackedConfig c;
    c.state = p.spec;
    c.regs = p.impl;
    c.pc = p.traceNode;
    c.alive = p.depth;
    c.crash = p.crash;
    return c;
}

PairConfig
unpackPair(const PackedConfig &c)
{
    PairConfig p;
    p.spec = c.state;
    p.impl = c.regs;
    p.traceNode = static_cast<uint32_t>(c.pc);
    p.depth = c.alive;
    p.crash = c.crash;
    return p;
}

/** Shard routing must ignore traceNode/depth: the same determinized
 *  pair always lands on the same shard, so its depth memo is exact. */
uint64_t
pairShardHash(const PairConfig &p)
{
    return PairKeyHash{}(PairKey{p.spec, p.impl, p.crash});
}

} // namespace

CheckReport
checkRefinement(const Cxl0Model &spec, const Cxl0Model &impl,
                const Alphabet &alphabet, const CheckRequest &request,
                ModelContext *spec_shared, ModelContext *impl_shared)
{
    if (spec_shared && &spec_shared->model() != &spec)
        CXL0_FATAL("shared spec ModelContext built over a different "
                   "model");
    if (impl_shared && &impl_shared->model() != &impl)
        CXL0_FATAL("shared impl ModelContext built over a different "
                   "model");
    auto t_start = std::chrono::steady_clock::now();
    obs::Telemetry *const tel = obs::current();
    const obs::ScopedSpan phaseSpan(obs::threadRing(),
                                    "search:refinement");
    if (spec.config().numNodes() != impl.config().numNodes() ||
        spec.config().numAddrs() != impl.config().numAddrs()) {
        CXL0_FATAL("refinement requires same-shape configurations");
    }
    if (request.maxDepth == 0)
        CXL0_FATAL("refinement requires a nonzero depth bound "
                   "(CheckRequest::maxDepth)");

    const size_t nnodes = impl.config().numNodes();
    const int max_crash = std::max(alphabet.maxCrashesPerNode, 0);
    const BitfieldWord budgetw(
        std::bit_width(static_cast<unsigned>(max_crash)));
    if (!budgetw.fits(nnodes))
        CXL0_FATAL("crash budget too large to pack: ", nnodes,
                   " nodes x ", budgetw.bits(), " bits > 64");

    std::vector<Label> labels = candidates(impl.config(), alphabet);

    CheckReport res;
    const size_t nworkers = std::max<size_t>(request.numThreads, 1);
    std::optional<ModelContext> own_spec, own_impl;
    if (!spec_shared)
        own_spec.emplace(spec);
    if (!impl_shared)
        own_impl.emplace(impl);
    ModelContext &spec_ctx = spec_shared ? *spec_shared : *own_spec;
    ModelContext &impl_ctx = impl_shared ? *impl_shared : *own_impl;
    SharedTraceDag dag;
    ShardedFrontier sf(nworkers, FrontierPolicy::DepthFirst);
    const Deadline deadline(request.timeBudgetMs);
    std::atomic<size_t> explored_count{0};
    std::atomic<bool> failed{false};
    std::mutex fail_m;

    /** Per-worker state: two scratch engines over the shared
     *  contexts, the shard's exact (pair -> remaining depth) memo,
     *  and raw apply buffers. */
    struct Worker
    {
        Worker(ModelContext &sc, ModelContext &ic)
            : specEng(sc), implEng(ic)
        {
        }

        ShardEngine specEng;
        ShardEngine implEng;
        FlatDepthMap<PairKey, PairKeyHash> explored;
        std::vector<model::StateId> implRaw, specRaw;
        /**
         * Pairs whose expansion hit the depth-bound leaf cut while
         * at remaining depth 1. Whether a pair is ever *expanded* at
         * remaining 1 depends on scheduling — a pair reached deeper
         * first never leaf-expands — so the cut is not declared
         * eagerly. After the search drains, the home shard's memo
         * holds each pair's maximal remaining depth
         * (order-independent), and only candidates still at depth 1
         * count: anything raised deeper had its subtree explored
         * within the bound elsewhere. That makes `truncated`
         * identical for every thread count and steal schedule. A
         * stolen pair may leaf-cut on a thief, so the lists are
         * resolved against the home-shard memos after the join.
         */
        std::vector<PairKey> leafCuts;
        CheckReport partial;
        size_t peak = 0;
    };
    std::deque<Worker> workers;
    for (size_t w = 0; w < nworkers; ++w)
        workers.emplace_back(spec_ctx, impl_ctx);

    /**
     * Admission, pinned to a pair's hash-owner shard `w`: the exact
     * depth-aware dedup against shard w's memo, under the shared
     * config budget. Runs for every configuration before it enters
     * shard w's frontier — a thief that later steals it does pure
     * expansion work and never touches another shard's memo.
     */
    auto admit_pair = [&](size_t w, const PackedConfig &packed) {
        Worker &me = workers[w];
        PairConfig cur = unpackPair(packed);
        uint32_t remaining =
            static_cast<uint32_t>(request.maxDepth - cur.depth);
        PairKey key{cur.spec, cur.impl, cur.crash};
        bool allow = explored_count.load(std::memory_order_relaxed) <
                     request.maxConfigs;
        using MemoOutcome =
            FlatDepthMap<PairKey, PairKeyHash>::Outcome;
        switch (me.explored.insertOrRaise(key, remaining, allow)) {
          case MemoOutcome::Pruned:
            return false;
          case MemoOutcome::Rejected:
            // Config budget spent: stop admitting new pairs.
            me.partial.truncated = true;
            return false;
          case MemoOutcome::Inserted:
            explored_count.fetch_add(1, std::memory_order_relaxed);
            return true;
          case MemoOutcome::Raised:
            return true;
        }
        return false;
    };

    {
        PairConfig root;
        root.spec =
            workers[0].specEng.closedSingleton(spec.initialState());
        root.impl =
            workers[0].implEng.closedSingleton(impl.initialState());
        for (size_t n = 0; n < nnodes; ++n)
            root.crash = budgetw.set(root.crash, n, max_crash);
        size_t owner = sf.ownerOf(pairShardHash(root));
        if (admit_pair(owner, packPair(root)))
            sf.pushLocal(owner, packPair(root));
    }

    auto run_worker = [&](size_t w) {
        Worker &me = workers[w];
        obs::TraceRing *const ring =
            tel != nullptr
                ? tel->ring("refine-shard-" + std::to_string(w))
                : nullptr;
        if (ring != nullptr)
            sf.setTraceRing(w, ring);
        obs::ShardPublisher pub(tel, w);
        const obs::ScopedSpan workerSpan(ring, "expand");
        auto publishSample = [&] {
            obs::SearchSample s;
            s.configsVisited = me.partial.stats.configsVisited;
            s.configsInterned =
                explored_count.load(std::memory_order_relaxed);
            auto [attempted, succeeded] = sf.stealCounters(w);
            s.stealsAttempted = attempted;
            s.stealsSucceeded = succeeded;
            s.frontierDepth = sf.depth(w);
            s.pendingDepth = sf.pending();
            // Interned pairs are a shared count: publish it through
            // shard 0 only so the merged counter is not N-counted.
            if (w != 0)
                s.configsInterned = 0;
            pub.publish(s);
        };
        auto sample_peak = [&] {
            size_t b = me.explored.bytes() + sf.bytes(w) +
                       me.specEng.bytes() + me.implEng.bytes() +
                       (me.implRaw.capacity() +
                        me.specRaw.capacity()) *
                           sizeof(model::StateId);
            me.peak = std::max(me.peak, b);
        };
        // Inbox arrivals are admitted by their owner (this worker).
        auto admit = [&](const PackedConfig &c) {
            return admit_pair(w, c);
        };
        auto route = [&](const PairConfig &next) {
            size_t owner = sf.ownerOf(pairShardHash(next));
            if (owner == w) {
                if (admit_pair(w, packPair(next)))
                    sf.pushLocal(w, packPair(next));
            } else {
                sf.send(owner, packPair(next));
            }
        };

        PackedConfig packed;
        while (sf.pop(w, packed, admit)) {
            PairConfig cur = unpackPair(packed);
            ++me.partial.stats.configsVisited;
            if ((me.partial.stats.configsVisited & 63) == 0) {
                sample_peak();
                if (pub.enabled())
                    publishSample();
                if (deadline.expired()) {
                    me.partial.truncated = true;
                    me.partial.timedOut = true;
                    sf.stopAll();
                    sf.done();
                    break;
                }
            }

            const bool leaf = cur.depth + 1 >= request.maxDepth;
            bool leaf_cut = false;
            for (uint32_t li = 0; li < labels.size(); ++li) {
                const Label &label = labels[li];
                if (label.op == Op::Crash &&
                    budgetw.get(cur.crash, label.node) == 0) {
                    continue;
                }
                if (!me.implEng.applyFrameRaw(cur.impl, label,
                                              me.implRaw))
                    continue; // impl cannot take this label
                if (me.specEng.applyFrameRaw(cur.spec, label,
                                             me.specRaw)) {
                    if (leaf) {
                        // The depth bound cuts this successor's
                        // subtree: the violation check above is all
                        // that remains — pay for no closure and
                        // intern nothing. Whether this cut is real
                        // is settled after the drain (see leafCuts).
                        leaf_cut = true;
                        continue;
                    }
                    PairConfig next;
                    next.spec =
                        me.specEng.tauClosureOfRaw(me.specRaw);
                    next.impl =
                        me.implEng.tauClosureOfRaw(me.implRaw);
                    next.depth = cur.depth + 1;
                    next.crash = cur.crash;
                    if (label.op == Op::Crash)
                        next.crash = budgetw.set(
                            next.crash, label.node,
                            budgetw.get(cur.crash, label.node) - 1);
                    next.traceNode = dag.append(li, cur.traceNode);
                    route(next);
                    continue;
                }
                // impl takes the label, spec cannot: violation. The
                // first finder wins; everyone else stops draining.
                {
                    std::lock_guard<std::mutex> lock(fail_m);
                    if (!failed.load(std::memory_order_relaxed)) {
                        failed.store(true,
                                     std::memory_order_release);
                        me.partial.verdict = CheckVerdict::Fail;
                        me.partial.counterexample.trace =
                            dag.rebuild(labels, cur.traceNode);
                        me.partial.counterexample.trace.push_back(
                            label);
                        me.partial.counterexample.description =
                            "impl trace the spec cannot follow";
                    }
                }
                sf.stopAll();
                break;
            }
            // A leaf expansion at remaining depth 1; whether the cut
            // is genuine is settled against the home-shard memo
            // after the drain (this worker may be a thief).
            if (leaf_cut)
                me.leafCuts.push_back(
                    PairKey{cur.spec, cur.impl, cur.crash});
            sf.done();
            if (sf.stopped())
                break;
        }
        sample_peak();
        me.partial.stats.peakVisitedBytes = me.peak;
        auto [attempted, succeeded] = sf.stealCounters(w);
        me.partial.stats.stealsAttempted = attempted;
        me.partial.stats.stealsSucceeded = succeeded;
        if (pub.enabled())
            publishSample();
    };

    runOnWorkers(nworkers, run_worker);

    // Leaf-cut resolution, after every memo is final: a candidate
    // whose home-shard memo still records maximal remaining depth 1
    // is a genuine cut — anything raised deeper had its subtree
    // explored within the bound elsewhere. This quantity is
    // order-independent, so `truncated` is identical for every
    // thread count and steal schedule.
    for (Worker &wkr : workers) {
        for (const PairKey &key : wkr.leafCuts) {
            size_t home = sf.ownerOf(PairKeyHash{}(key));
            if (workers[home].explored.depthOf(key) == 1) {
                res.truncated = true;
                break;
            }
        }
        if (res.truncated)
            break;
    }

    for (Worker &wkr : workers) {
        if (wkr.partial.verdict == CheckVerdict::Fail) {
            res.verdict = CheckVerdict::Fail;
            res.counterexample = std::move(wkr.partial.counterexample);
        }
        res.truncated |= wkr.partial.truncated;
        res.timedOut |= wkr.partial.timedOut;
        res.stats.merge(wkr.partial.stats);
    }
    if (res.verdict != CheckVerdict::Fail) {
        res.verdict = res.truncated ? CheckVerdict::Inconclusive
                                    : CheckVerdict::Pass;
    }
    res.stats.configsInterned =
        explored_count.load(std::memory_order_relaxed);
    res.stats.statesInterned =
        spec_ctx.states().size() + impl_ctx.states().size();
    res.stats.framesInterned =
        spec_ctx.frames().size() + impl_ctx.frames().size();
    res.stats.tableBytes =
        spec_ctx.bytes() + impl_ctx.bytes() + dag.bytes();
    res.stats.peakVisitedBytes += res.stats.tableBytes;
    finalizeReportTiming(res, t_start);
    return res;
}

// -------------------------------------------------------------------
// Reference implementation: the pre-engine deep-copy search.
// -------------------------------------------------------------------

namespace
{

/** Deduplicated tau-closure over a set of states (deep copies). */
std::vector<State>
closure(const Cxl0Model &m, const std::vector<State> &states)
{
    model::StateTable table(m.config().numNodes(),
                            m.config().numAddrs());
    std::vector<State> out;
    for (const State &s : states) {
        for (State &c : m.tauClosure(s)) {
            bool fresh = false;
            table.intern(c, &fresh);
            if (fresh)
                out.push_back(std::move(c));
        }
    }
    return out;
}

/** Apply a label across a state set (no closure). */
std::vector<State>
applyAll(const Cxl0Model &m, const std::vector<State> &states,
         const Label &label)
{
    std::vector<State> out;
    for (const State &s : states)
        if (auto succ = m.apply(s, label))
            out.push_back(std::move(*succ));
    return out;
}

struct SearchFrame
{
    std::vector<State> spec; // tau-closed
    std::vector<State> impl; // tau-closed
    std::vector<Label> trace;
    std::vector<int> crashBudget;
};

/**
 * Order-insensitive hash over a (spec set, impl set, budget) triple,
 * used to prune revisits of the same determinized pair. Hash-only: a
 * collision can wrongly prune (kept as the seed behaved).
 */
uint64_t
frameKey(const SearchFrame &f)
{
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    uint64_t spec_mix = 0, impl_mix = 0;
    for (const State &s : f.spec)
        spec_mix += s.hash() * 0x100000001b3ULL + 1;
    for (const State &s : f.impl)
        impl_mix += s.hash() * 0x100000001b3ULL + 1;
    h ^= spec_mix + (h << 6);
    h ^= impl_mix * 31 + (h >> 3);
    for (int b : f.crashBudget)
        h = h * 131 + static_cast<uint64_t>(b + 1);
    return h;
}

/** Estimated resident bytes of one deep-copy search frame. */
size_t
frameBytes(const SearchFrame &f)
{
    size_t b = sizeof(SearchFrame);
    for (const State &s : f.spec)
        b += sizeof(State) +
             s.cacheLines().capacity() * sizeof(Value) +
             s.memLines().capacity() * sizeof(Value);
    for (const State &s : f.impl)
        b += sizeof(State) +
             s.cacheLines().capacity() * sizeof(Value) +
             s.memLines().capacity() * sizeof(Value);
    b += f.spec.capacity() * sizeof(State);
    b += f.impl.capacity() * sizeof(State);
    b += f.trace.capacity() * sizeof(Label);
    b += f.crashBudget.capacity() * sizeof(int);
    return b;
}

} // namespace

CheckReport
checkRefinementReference(const Cxl0Model &spec, const Cxl0Model &impl,
                         const Alphabet &alphabet,
                         const CheckRequest &request)
{
    auto t_start = std::chrono::steady_clock::now();
    if (spec.config().numNodes() != impl.config().numNodes() ||
        spec.config().numAddrs() != impl.config().numAddrs()) {
        CXL0_FATAL("refinement requires same-shape configurations");
    }
    if (request.maxDepth == 0)
        CXL0_FATAL("refinement requires a nonzero depth bound "
                   "(CheckRequest::maxDepth)");
    std::vector<Label> labels = candidates(impl.config(), alphabet);

    CheckReport res;
    SearchFrame root;
    root.spec = closure(spec, {spec.initialState()});
    root.impl = closure(impl, {impl.initialState()});
    root.crashBudget.assign(impl.config().numNodes(),
                            alphabet.maxCrashesPerNode);

    // Memo: deepest remaining-depth already explored per frame key —
    // the same open-addressed probe-loop template the engine search
    // uses, keyed by the (collision-prone, as seeded) frame hash.
    struct U64Hash
    {
        size_t operator()(uint64_t k) const
        {
            return static_cast<size_t>(mixBits(k));
        }
    };
    FlatDepthMap<uint64_t, U64Hash> explored;

    std::vector<SearchFrame> stack{root};
    size_t live_bytes = frameBytes(root);
    size_t peak = live_bytes;

    auto finalize = [&] {
        res.stats.configsInterned = explored.size();
        res.stats.peakVisitedBytes = peak + explored.bytes();
        finalizeReportTiming(res, t_start);
    };

    const Deadline deadline(request.timeBudgetMs);
    while (!stack.empty()) {
        SearchFrame cur = std::move(stack.back());
        stack.pop_back();
        live_bytes -= frameBytes(cur);
        ++res.stats.configsVisited;
        if ((res.stats.configsVisited & 63) == 0 &&
            deadline.expired()) {
            res.truncated = true;
            res.timedOut = true;
            break;
        }
        if (cur.trace.size() >= request.maxDepth) {
            res.truncated = true;
            continue;
        }
        uint32_t remaining = static_cast<uint32_t>(
            request.maxDepth - cur.trace.size());
        uint64_t key = frameKey(cur);
        using MemoOutcome = FlatDepthMap<uint64_t, U64Hash>::Outcome;
        MemoOutcome memo = explored.insertOrRaise(
            key, remaining, explored.size() < request.maxConfigs);
        if (memo == MemoOutcome::Pruned)
            continue;
        if (memo == MemoOutcome::Rejected) {
            res.truncated = true;
            continue;
        }
        for (const Label &label : labels) {
            if (label.op == Op::Crash &&
                cur.crashBudget[label.node] <= 0) {
                continue;
            }
            std::vector<State> impl_next =
                applyAll(impl, cur.impl, label);
            if (impl_next.empty())
                continue; // impl cannot take this label
            std::vector<State> spec_next =
                applyAll(spec, cur.spec, label);
            std::vector<Label> trace = cur.trace;
            trace.push_back(label);
            if (spec_next.empty()) {
                res.verdict = CheckVerdict::Fail;
                res.counterexample.trace = std::move(trace);
                res.counterexample.description =
                    "impl trace the spec cannot follow";
                finalize();
                return res;
            }
            if (explored.size() >= request.maxConfigs) {
                res.truncated = true;
                continue;
            }
            SearchFrame next;
            next.spec = closure(spec, spec_next);
            next.impl = closure(impl, impl_next);
            next.trace = std::move(trace);
            next.crashBudget = cur.crashBudget;
            if (label.op == Op::Crash)
                next.crashBudget[label.node] -= 1;
            live_bytes += frameBytes(next);
            peak = std::max(
                peak, live_bytes + stack.capacity() *
                                       sizeof(SearchFrame));
            stack.push_back(std::move(next));
        }
    }
    res.verdict = res.truncated ? CheckVerdict::Inconclusive
                                : CheckVerdict::Pass;
    finalize();
    return res;
}

RefinementResult
checkRefinement(const Cxl0Model &spec, const Cxl0Model &impl,
                size_t depth, const Alphabet &alphabet)
{
    RefinementResult out;
    if (depth == 0)
        return out; // no visible labels: trivially refines
    CheckRequest request;
    request.maxDepth = depth;
    // The legacy API had no config budget and always completed the
    // depth-bounded search; RefinementResult cannot express
    // truncation, so don't let the default budget introduce it.
    request.maxConfigs = static_cast<size_t>(-1);
    CheckReport report = checkRefinement(spec, impl, alphabet, request);
    out.refines = report.verdict != CheckVerdict::Fail;
    out.counterexample = std::move(report.counterexample.trace);
    return out;
}

std::vector<std::vector<Label>>
enumerateTraces(const Cxl0Model &m, size_t depth, const Alphabet &alphabet)
{
    const size_t nnodes = m.config().numNodes();
    const int max_crash = std::max(alphabet.maxCrashesPerNode, 0);
    const BitfieldWord budgetw(
        std::bit_width(static_cast<unsigned>(max_crash)));
    CXL0_ASSERT(budgetw.fits(nnodes), "crash budget too large to pack");
    std::vector<Label> labels = candidates(m.config(), alphabet);

    SearchEngine eng(m);
    std::vector<TraceNode> trace_nodes;

    struct EnumConfig
    {
        FrameId frame;
        uint32_t traceNode;
        uint32_t depth;
        uint64_t crash;
    };

    EnumConfig root{eng.closedSingleton(m.initialState()), kNoTraceNode,
                    0, 0};
    for (size_t n = 0; n < nnodes; ++n)
        root.crash = budgetw.set(root.crash, n, max_crash);

    std::vector<std::vector<Label>> out;
    out.push_back({}); // the empty trace
    std::vector<EnumConfig> stack{root};
    while (!stack.empty()) {
        EnumConfig cur = stack.back();
        stack.pop_back();
        if (cur.depth >= depth)
            continue;
        for (uint32_t li = 0; li < labels.size(); ++li) {
            const Label &label = labels[li];
            if (label.op == Op::Crash &&
                budgetw.get(cur.crash, label.node) == 0) {
                continue;
            }
            FrameId next_frame = eng.applyFrame(cur.frame, label);
            if (next_frame == kNoFrameId)
                continue;
            EnumConfig next;
            next.frame = eng.tauClosureFrame(next_frame);
            next.depth = cur.depth + 1;
            next.crash = cur.crash;
            if (label.op == Op::Crash)
                next.crash = budgetw.set(
                    next.crash, label.node,
                    budgetw.get(cur.crash, label.node) - 1);
            trace_nodes.push_back({li, cur.traceNode});
            next.traceNode =
                static_cast<uint32_t>(trace_nodes.size() - 1);
            out.push_back(
                rebuildTrace(trace_nodes, labels, next.traceNode));
            stack.push_back(next);
        }
    }
    return out;
}

} // namespace cxl0::check
