#include "check/simulation.hh"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "obs/telemetry.hh"

namespace cxl0::check
{

using cxl0::Addr;
using cxl0::Value;
using model::Cxl0Model;
using model::FrameId;
using model::kNoFrameId;
using model::Label;
using model::State;
using model::StateId;
using model::SystemConfig;

std::vector<State>
enumerateStates(const SystemConfig &cfg, Value max_value)
{
    const size_t nodes = cfg.numNodes();
    const size_t addrs = cfg.numAddrs();
    std::vector<State> out;

    // Enumerate cache contents: per (node, addr) one of bottom or
    // [0, max_value]; memory contents: per addr one of [0, max_value].
    const size_t cache_slots = nodes * addrs;
    const uint64_t cache_options = static_cast<uint64_t>(max_value) + 2;
    const uint64_t mem_options = static_cast<uint64_t>(max_value) + 1;

    uint64_t cache_total = 1;
    for (size_t s = 0; s < cache_slots; ++s)
        cache_total *= cache_options;
    uint64_t mem_total = 1;
    for (size_t s = 0; s < addrs; ++s)
        mem_total *= mem_options;

    for (uint64_t cc = 0; cc < cache_total; ++cc) {
        State base(nodes, addrs);
        uint64_t rest = cc;
        for (NodeId i = 0; i < nodes; ++i) {
            for (Addr x = 0; x < addrs; ++x) {
                uint64_t digit = rest % cache_options;
                rest /= cache_options;
                base.setCache(i, x,
                              digit == 0 ? kBottom
                                         : static_cast<Value>(digit - 1));
            }
        }
        if (!base.invariantHolds())
            continue;
        for (uint64_t mm = 0; mm < mem_total; ++mm) {
            State s = base;
            uint64_t mrest = mm;
            for (Addr x = 0; x < addrs; ++x) {
                s.setMemory(x, static_cast<Value>(mrest % mem_options));
                mrest /= mem_options;
            }
            out.push_back(std::move(s));
        }
    }
    return out;
}

CheckReport
checkTraceInclusion(const Cxl0Model &model,
                    const std::vector<State> &states,
                    const std::vector<Label> &lhs,
                    const std::vector<Label> &rhs,
                    const CheckRequest &request, ModelContext *shared)
{
    if (shared && &shared->model() != &model)
        CXL0_FATAL("shared ModelContext built over a different model");
    auto t_start = std::chrono::steady_clock::now();
    const obs::ScopedSpan phaseSpan(obs::threadRing(),
                                    "search:inclusion");
    CheckReport res;
    // One shared context for every start state and worker: tau
    // closures computed for one gamma's walk are memo hits for every
    // later walk, whichever worker runs it.
    std::optional<ModelContext> own_ctx;
    if (!shared)
        own_ctx.emplace(model);
    ModelContext &ctx = shared ? *shared : *own_ctx;
    const size_t nworkers = std::max<size_t>(request.numThreads, 1);

    // Start states are claimed dynamically from one shared counter —
    // the degenerate (independent-items) form of the work stealing
    // the frontier searches do, so a worker stuck on an expensive
    // gamma no longer strands the states a static stride would have
    // assigned it. The *lowest* failing index wins, so the reported
    // counterexample is independent of the worker count and of which
    // worker happened to claim what.
    std::atomic<size_t> next_state{0};
    std::atomic<size_t> fail_idx{states.size()};
    std::atomic<bool> truncated{false};
    std::atomic<bool> timed_out{false};
    const Deadline deadline(request.timeBudgetMs);
    std::mutex fail_m;
    std::string fail_desc;

    struct Worker
    {
        explicit Worker(ModelContext &ctx) : eng(ctx) {}
        ShardEngine eng;
        SearchStats stats;
    };
    std::deque<Worker> workers;
    for (size_t w = 0; w < nworkers; ++w)
        workers.emplace_back(ctx);

    auto run_worker = [&](size_t w) {
        Worker &me = workers[w];
        for (size_t i = next_state.fetch_add(
                 1, std::memory_order_relaxed);
             i < states.size();
             i = next_state.fetch_add(1, std::memory_order_relaxed)) {
            // A failure at an earlier index makes every later start
            // state irrelevant; claimed indices ascend, so stop.
            if (fail_idx.load(std::memory_order_acquire) <= i)
                break;
            if (deadline.expired()) {
                truncated.store(true, std::memory_order_relaxed);
                timed_out.store(true, std::memory_order_relaxed);
                break;
            }
            if (ctx.states().size() >= request.maxConfigs) {
                truncated.store(true, std::memory_order_relaxed);
                break;
            }
            const State &gamma = states[i];
            ++me.stats.configsVisited;
            FrameId lhs_post = frameAfterWalk(me.eng, gamma, lhs);
            if (lhs_post == kNoFrameId)
                continue; // vacuously true from this state
            FrameId rhs_post = frameAfterWalk(me.eng, gamma, rhs);
            // Frames are sorted id spans over one table: inclusion
            // is one merge walk. The *reported* missing state is
            // chosen by content (smallest rendering), not by id —
            // StateId numbering depends on which worker interned a
            // state first, and the counterexample text must be
            // identical for every thread count.
            std::string missing_desc;
            auto consider = [&](StateId id) {
                std::string d =
                    ctx.states().materialize(id).describe();
                if (missing_desc.empty() || d < missing_desc)
                    missing_desc = std::move(d);
            };
            if (rhs_post == kNoFrameId) {
                const StateId *a = ctx.frames().begin(lhs_post);
                const StateId *ae = ctx.frames().end(lhs_post);
                for (; a != ae; ++a)
                    consider(*a);
            } else {
                const StateId *a = ctx.frames().begin(lhs_post);
                const StateId *ae = ctx.frames().end(lhs_post);
                const StateId *b = ctx.frames().begin(rhs_post);
                const StateId *be = ctx.frames().end(rhs_post);
                for (; a != ae; ++a) {
                    while (b != be && *b < *a)
                        ++b;
                    if (b == be || *b != *a)
                        consider(*a);
                }
            }
            if (!missing_desc.empty()) {
                std::lock_guard<std::mutex> lock(fail_m);
                if (i < fail_idx.load(std::memory_order_relaxed)) {
                    fail_idx.store(i, std::memory_order_release);
                    std::ostringstream os;
                    os << "from " << gamma.describe() << ", trace ["
                       << model::describeTrace(lhs) << "] reaches "
                       << missing_desc << " but ["
                       << model::describeTrace(rhs) << "] cannot";
                    fail_desc = os.str();
                }
                break;
            }
        }
    };

    runOnWorkers(nworkers, run_worker);

    for (Worker &wkr : workers)
        res.stats.merge(wkr.stats);
    if (fail_idx.load(std::memory_order_acquire) < states.size()) {
        res.verdict = CheckVerdict::Fail;
        res.counterexample.description = fail_desc;
    } else if (truncated.load(std::memory_order_relaxed)) {
        res.truncated = true;
        res.timedOut = timed_out.load(std::memory_order_relaxed);
        res.verdict = CheckVerdict::Inconclusive;
    } else {
        res.verdict = CheckVerdict::Pass;
    }
    ctx.fillStats(res.stats);
    res.stats.configsInterned = ctx.frames().size();
    res.stats.tableBytes = ctx.bytes();
    res.stats.peakVisitedBytes += res.stats.tableBytes;
    finalizeReportTiming(res, t_start);
    return res;
}

SimulationResult
checkTraceInclusion(const Cxl0Model &model,
                    const std::vector<State> &states,
                    const std::vector<Label> &lhs,
                    const std::vector<Label> &rhs)
{
    // Legacy semantics: no config budget, so an Inconclusive verdict
    // (which SimulationResult cannot express) is impossible.
    CheckRequest request;
    request.maxConfigs = static_cast<size_t>(-1);
    CheckReport report =
        checkTraceInclusion(model, states, lhs, rhs, request);
    return SimulationResult{report.verdict != CheckVerdict::Fail,
                            report.counterexample.description};
}

std::vector<Prop1Item>
prop1Items(NodeId i, NodeId j, NodeId k, Addr x, Value v)
{
    // Assumptions from the paper: x in Loc_k, j != k.
    std::vector<Prop1Item> items;
    items.push_back({1, "RStore is stronger than LStore",
                     {Label::rstore(i, x, v)},
                     {Label::lstore(i, x, v)}});
    items.push_back({2, "RStore and LStore by the owner are equivalent",
                     {Label::lstore(k, x, v)},
                     {Label::rstore(k, x, v)}});
    items.push_back({3, "MStore is stronger than RStore",
                     {Label::mstore(i, x, v)},
                     {Label::rstore(i, x, v)}});
    items.push_back({4, "RFlush is stronger than LFlush",
                     {Label::rflush(i, x)},
                     {Label::lflush(i, x)}});
    items.push_back({5, "LFlush after RStore by non-owner is redundant",
                     {Label::rstore(j, x, v)},
                     {Label::rstore(j, x, v), Label::lflush(j, x)}});
    items.push_back({6, "RFlush after MStore is redundant",
                     {Label::mstore(i, x, v)},
                     {Label::mstore(i, x, v), Label::rflush(i, x)}});
    items.push_back({7, "RStore by non-owner is simulated by "
                        "LStore+LFlush",
                     {Label::lstore(j, x, v), Label::lflush(j, x)},
                     {Label::rstore(j, x, v)}});
    items.push_back({8, "MStore is simulated by LStore+RFlush",
                     {Label::lstore(i, x, v), Label::rflush(i, x)},
                     {Label::mstore(i, x, v)}});
    return items;
}

SimulationResult
checkProp1(const SystemConfig &cfg, model::ModelVariant variant,
           Value max_value)
{
    Cxl0Model model(cfg, variant);
    std::vector<State> states = enumerateStates(cfg, max_value);

    for (Addr x = 0; x < cfg.numAddrs(); ++x) {
        NodeId k = cfg.ownerOf(x);
        for (NodeId i = 0; i < cfg.numNodes(); ++i) {
            for (NodeId j = 0; j < cfg.numNodes(); ++j) {
                if (j == k)
                    continue;
                for (Value v = 0; v <= max_value; ++v) {
                    for (const Prop1Item &item :
                         prop1Items(i, j, k, x, v)) {
                        SimulationResult r = checkTraceInclusion(
                            model, states, item.lhs, item.rhs);
                        if (!r.holds) {
                            std::ostringstream os;
                            os << "Proposition 1 item " << item.number
                               << " (" << item.name << ") fails: "
                               << r.counterexample;
                            return SimulationResult{false, os.str()};
                        }
                    }
                }
            }
        }
    }
    return SimulationResult{true, ""};
}

} // namespace cxl0::check
