#include "check/simulation.hh"

#include <chrono>
#include <sstream>

namespace cxl0::check
{

using cxl0::Addr;
using cxl0::Value;
using model::Cxl0Model;
using model::FrameId;
using model::kNoFrameId;
using model::Label;
using model::State;
using model::StateId;
using model::SystemConfig;

std::vector<State>
enumerateStates(const SystemConfig &cfg, Value max_value)
{
    const size_t nodes = cfg.numNodes();
    const size_t addrs = cfg.numAddrs();
    std::vector<State> out;

    // Enumerate cache contents: per (node, addr) one of bottom or
    // [0, max_value]; memory contents: per addr one of [0, max_value].
    const size_t cache_slots = nodes * addrs;
    const uint64_t cache_options = static_cast<uint64_t>(max_value) + 2;
    const uint64_t mem_options = static_cast<uint64_t>(max_value) + 1;

    uint64_t cache_total = 1;
    for (size_t s = 0; s < cache_slots; ++s)
        cache_total *= cache_options;
    uint64_t mem_total = 1;
    for (size_t s = 0; s < addrs; ++s)
        mem_total *= mem_options;

    for (uint64_t cc = 0; cc < cache_total; ++cc) {
        State base(nodes, addrs);
        uint64_t rest = cc;
        for (NodeId i = 0; i < nodes; ++i) {
            for (Addr x = 0; x < addrs; ++x) {
                uint64_t digit = rest % cache_options;
                rest /= cache_options;
                base.setCache(i, x,
                              digit == 0 ? kBottom
                                         : static_cast<Value>(digit - 1));
            }
        }
        if (!base.invariantHolds())
            continue;
        for (uint64_t mm = 0; mm < mem_total; ++mm) {
            State s = base;
            uint64_t mrest = mm;
            for (Addr x = 0; x < addrs; ++x) {
                s.setMemory(x, static_cast<Value>(mrest % mem_options));
                mrest /= mem_options;
            }
            out.push_back(std::move(s));
        }
    }
    return out;
}

CheckReport
checkTraceInclusion(const Cxl0Model &model,
                    const std::vector<State> &states,
                    const std::vector<Label> &lhs,
                    const std::vector<Label> &rhs,
                    const CheckRequest &request)
{
    auto t_start = std::chrono::steady_clock::now();
    CheckReport res;
    // One engine for every start state: tau closures computed for one
    // gamma's walk are memo hits for the next.
    TraceChecker checker(model);
    SearchEngine &eng = checker.engine();

    auto finalize = [&] {
        eng.fillStats(res.stats);
        res.stats.configsInterned = eng.frames().size();
        res.stats.peakVisitedBytes = eng.bytes();
        res.stats.seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                t_start)
                                .count();
    };

    for (const State &gamma : states) {
        if (eng.states().size() >= request.maxConfigs) {
            res.truncated = true;
            res.verdict = CheckVerdict::Inconclusive;
            finalize();
            return res;
        }
        ++res.stats.configsVisited;
        FrameId lhs_post = checker.frameAfter(gamma, lhs);
        if (lhs_post == kNoFrameId)
            continue; // vacuously true from this state
        FrameId rhs_post = checker.frameAfter(gamma, rhs);
        // Frames are sorted id spans over one table: inclusion is
        // one merge walk, and the first missing id is the
        // counterexample.
        StateId missing = model::kNoStateId;
        if (rhs_post == kNoFrameId) {
            missing = *eng.frames().begin(lhs_post);
        } else {
            const StateId *a = eng.frames().begin(lhs_post);
            const StateId *ae = eng.frames().end(lhs_post);
            const StateId *b = eng.frames().begin(rhs_post);
            const StateId *be = eng.frames().end(rhs_post);
            for (; a != ae; ++a) {
                while (b != be && *b < *a)
                    ++b;
                if (b == be || *b != *a) {
                    missing = *a;
                    break;
                }
            }
        }
        if (missing != model::kNoStateId) {
            std::ostringstream os;
            os << "from " << gamma.describe() << ", trace ["
               << model::describeTrace(lhs) << "] reaches "
               << eng.states().materialize(missing).describe()
               << " but [" << model::describeTrace(rhs)
               << "] cannot";
            res.verdict = CheckVerdict::Fail;
            res.counterexample.description = os.str();
            finalize();
            return res;
        }
    }
    res.verdict = CheckVerdict::Pass;
    finalize();
    return res;
}

SimulationResult
checkTraceInclusion(const Cxl0Model &model,
                    const std::vector<State> &states,
                    const std::vector<Label> &lhs,
                    const std::vector<Label> &rhs)
{
    // Legacy semantics: no config budget, so an Inconclusive verdict
    // (which SimulationResult cannot express) is impossible.
    CheckRequest request;
    request.maxConfigs = static_cast<size_t>(-1);
    CheckReport report =
        checkTraceInclusion(model, states, lhs, rhs, request);
    return SimulationResult{report.verdict != CheckVerdict::Fail,
                            report.counterexample.description};
}

std::vector<Prop1Item>
prop1Items(NodeId i, NodeId j, NodeId k, Addr x, Value v)
{
    // Assumptions from the paper: x in Loc_k, j != k.
    std::vector<Prop1Item> items;
    items.push_back({1, "RStore is stronger than LStore",
                     {Label::rstore(i, x, v)},
                     {Label::lstore(i, x, v)}});
    items.push_back({2, "RStore and LStore by the owner are equivalent",
                     {Label::lstore(k, x, v)},
                     {Label::rstore(k, x, v)}});
    items.push_back({3, "MStore is stronger than RStore",
                     {Label::mstore(i, x, v)},
                     {Label::rstore(i, x, v)}});
    items.push_back({4, "RFlush is stronger than LFlush",
                     {Label::rflush(i, x)},
                     {Label::lflush(i, x)}});
    items.push_back({5, "LFlush after RStore by non-owner is redundant",
                     {Label::rstore(j, x, v)},
                     {Label::rstore(j, x, v), Label::lflush(j, x)}});
    items.push_back({6, "RFlush after MStore is redundant",
                     {Label::mstore(i, x, v)},
                     {Label::mstore(i, x, v), Label::rflush(i, x)}});
    items.push_back({7, "RStore by non-owner is simulated by "
                        "LStore+LFlush",
                     {Label::lstore(j, x, v), Label::lflush(j, x)},
                     {Label::rstore(j, x, v)}});
    items.push_back({8, "MStore is simulated by LStore+RFlush",
                     {Label::lstore(i, x, v), Label::rflush(i, x)},
                     {Label::mstore(i, x, v)}});
    return items;
}

SimulationResult
checkProp1(const SystemConfig &cfg, model::ModelVariant variant,
           Value max_value)
{
    Cxl0Model model(cfg, variant);
    std::vector<State> states = enumerateStates(cfg, max_value);

    for (Addr x = 0; x < cfg.numAddrs(); ++x) {
        NodeId k = cfg.ownerOf(x);
        for (NodeId i = 0; i < cfg.numNodes(); ++i) {
            for (NodeId j = 0; j < cfg.numNodes(); ++j) {
                if (j == k)
                    continue;
                for (Value v = 0; v <= max_value; ++v) {
                    for (const Prop1Item &item :
                         prop1Items(i, j, k, x, v)) {
                        SimulationResult r = checkTraceInclusion(
                            model, states, item.lhs, item.rhs);
                        if (!r.holds) {
                            std::ostringstream os;
                            os << "Proposition 1 item " << item.number
                               << " (" << item.name << ") fails: "
                               << r.counterexample;
                            return SimulationResult{false, os.str()};
                        }
                    }
                }
            }
        }
    }
    return SimulationResult{true, ""};
}

} // namespace cxl0::check
