/**
 * @file
 * Shared-context pooling for batch / service checking.
 *
 * Every checker entry point builds a fresh ModelContext per request:
 * correct, but a batch runner (`cxl0check serve`, the fuzz farm's
 * cache trial) that drives hundreds of scenarios over a handful of
 * system shapes then re-interns the same states, frames, and tau
 * closures over and over. A ContextPool keys one persistent
 * (Cxl0Model, ModelContext) pair per distinct (SystemConfig, variant)
 * and hands it to the shared-context seams the checkers grew
 * (Explorer::check(ModelContext*), checkTraceFeasible,
 * checkTraceInclusion, checkRefinement): interning tables and
 * publish-once memos survive across requests, so request N+1 starts
 * with every closure request N computed.
 *
 * Interning is semantics-free — a warm context changes table-size
 * statistics (statesInterned / framesInterned / tableBytes), never a
 * verdict, an outcome set, or a counterexample. The result cache
 * (check/cache.hh) serializes only the deterministic report fields,
 * so pooled and fresh runs are byte-identical under that projection.
 *
 * Not thread-safe: one pool per serving thread (the checkers
 * themselves may still fan out workers over a pooled context).
 */

#ifndef CXL0_CHECK_SERVICE_HH
#define CXL0_CHECK_SERVICE_HH

#include <map>
#include <memory>
#include <string>

#include "check/engine.hh"

namespace cxl0::check
{

/** Canonical pool key: variant + persistence map + owner map. */
std::string contextPoolKey(const model::SystemConfig &cfg,
                           model::ModelVariant variant);

class ContextPool
{
  public:
    /** One (SystemConfig, variant) worth of persistent state. */
    struct Entry
    {
        Entry(const model::SystemConfig &cfg, model::ModelVariant v)
            : model(cfg, v), ctx(model)
        {
        }

        model::Cxl0Model model;
        ModelContext ctx;
    };

    /** The pooled entry for (cfg, variant), built on first use. */
    Entry &acquire(const model::SystemConfig &cfg,
                   model::ModelVariant variant);

    /** Distinct (config, variant) shapes seen. */
    size_t size() const { return entries_.size(); }

    /** acquire() calls served by an existing entry. */
    size_t reuses() const { return reuses_; }

    /** Resident bytes across every pooled context. */
    size_t bytes() const;

  private:
    std::map<std::string, std::unique_ptr<Entry>> entries_;
    size_t reuses_ = 0;
};

} // namespace cxl0::check

#endif // CXL0_CHECK_SERVICE_HH
