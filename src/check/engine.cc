#include "check/engine.hh"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <thread>

#include <sys/resource.h>

#include "common/hashmix.hh"
#include "common/logging.hh"

namespace cxl0::check
{

using model::kNoFrameId;
using model::kNoStateId;
using model::TauMove;

const char *
checkVerdictName(CheckVerdict v)
{
    switch (v) {
      case CheckVerdict::Pass:
        return "pass";
      case CheckVerdict::Fail:
        return "fail";
      case CheckVerdict::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

const char *
reductionName(Reduction r)
{
    switch (r) {
      case Reduction::None:
        return "none";
      case Reduction::Tau:
        return "tau";
      case Reduction::Ample:
        return "ample";
      case Reduction::CrashAmple:
        return "crash-ample";
      case Reduction::Sleep:
        return "sleep";
      case Reduction::Full:
        return "full";
    }
    return "?";
}

bool
parseReduction(const char *name, Reduction *out)
{
    for (Reduction r :
         {Reduction::None, Reduction::Tau, Reduction::Ample,
          Reduction::CrashAmple, Reduction::Sleep, Reduction::Full}) {
        if (std::strcmp(name, reductionName(r)) == 0) {
            *out = r;
            return true;
        }
    }
    return false;
}

void
SearchStats::merge(const SearchStats &other)
{
    configsVisited += other.configsVisited;
    configsInterned += other.configsInterned;
    tauMovesSkipped += other.tauMovesSkipped;
    ampleSkipped += other.ampleSkipped;
    crashAmpleSkipped += other.crashAmpleSkipped;
    sleepSetSkipped += other.sleepSetSkipped;
    symmetryMerged += other.symmetryMerged;
    stealsAttempted += other.stealsAttempted;
    stealsSucceeded += other.stealsSucceeded;
    spilledConfigs += other.spilledConfigs;
    spillBytes += other.spillBytes;
    inboxBatches += other.inboxBatches;
    checkpointsWritten =
        std::max(checkpointsWritten, other.checkpointsWritten);
    peakVisitedBytes += other.peakVisitedBytes;
    statesInterned = std::max(statesInterned, other.statesInterned);
    framesInterned = std::max(framesInterned, other.framesInterned);
    tableBytes = std::max(tableBytes, other.tableBytes);
    processPeakRssBytes =
        std::max(processPeakRssBytes, other.processPeakRssBytes);
    seconds = std::max(seconds, other.seconds);
}

size_t
processPeakRssBytes()
{
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<size_t>(ru.ru_maxrss) * 1024;
}

void
finalizeReportTiming(CheckReport &report,
                     std::chrono::steady_clock::time_point t0)
{
    report.stats.processPeakRssBytes = processPeakRssBytes();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    report.stats.seconds = seconds;
    report.wallMs = seconds * 1000.0;
}

std::string
Counterexample::describe() const
{
    if (empty())
        return "(none)";
    std::ostringstream os;
    if (!trace.empty())
        os << "[" << model::describeTrace(trace) << "]";
    if (!description.empty()) {
        if (!trace.empty())
            os << " ";
        os << description;
    }
    return os.str();
}

bool
Outcome::operator<(const Outcome &other) const
{
    if (crashedThreads != other.crashedThreads)
        return crashedThreads < other.crashedThreads;
    return regs < other.regs;
}

bool
Outcome::operator==(const Outcome &other) const
{
    return crashedThreads == other.crashedThreads && regs == other.regs;
}

std::string
Outcome::describe() const
{
    std::ostringstream os;
    for (size_t t = 0; t < regs.size(); ++t) {
        os << "T" << t << ((crashedThreads >> t) & 1 ? "(crashed)" : "")
           << "[";
        for (size_t r = 0; r < regs[t].size(); ++r)
            os << (r ? "," : "") << regs[t][r];
        os << "] ";
    }
    return os.str();
}

std::string
CheckReport::describe() const
{
    std::ostringstream os;
    os << checkVerdictName(verdict);
    if (truncated)
        os << " (truncated)";
    if (!outcomes.empty())
        os << ", " << outcomes.size() << " outcomes";
    if (verdict == CheckVerdict::Fail)
        os << ", counterexample: " << counterexample.describe();
    os << " [" << stats.configsVisited << " configs, "
       << stats.statesInterned << " states, " << stats.framesInterned
       << " frames";
    if (stats.tauMovesSkipped || stats.ampleSkipped)
        os << ", " << stats.tauMovesSkipped << "+"
           << stats.ampleSkipped << " tau/ample skipped";
    if (stats.crashAmpleSkipped || stats.sleepSetSkipped ||
        stats.symmetryMerged)
        os << ", " << stats.crashAmpleSkipped << "/"
           << stats.sleepSetSkipped << "/" << stats.symmetryMerged
           << " crash-ample/sleep/symmetry";
    if (stats.stealsAttempted)
        os << ", " << stats.stealsSucceeded << "/"
           << stats.stealsAttempted << " steals";
    if (wallMs > 0.0) {
        os << ", " << std::fixed << std::setprecision(1) << wallMs
           << " ms";
        os.unsetf(std::ios::floatfield);
    }
    os << "]";
    return os.str();
}

uint64_t
hashPacked(const PackedConfig &c)
{
    uint64_t h =
        mixBits((static_cast<uint64_t>(c.state) << 32) ^ c.regs);
    h = mixBits(h ^ c.pc);
    h = mixBits(h ^ (static_cast<uint64_t>(c.alive) << 32) ^ c.crash);
    // The sleep word is metadata, not identity (PackedConfig doc):
    // it is deliberately excluded so converging paths with different
    // sleep words land on the same stored entry.
    return h;
}

// ------------------------------------------------------------------
// FlatConfigSet
// ------------------------------------------------------------------

namespace
{

constexpr size_t kInitialSlots = 64;

/** Slot arrays below this stay on the heap even with an arena
 *  installed (a file + mapping per tiny table buys nothing). */
constexpr size_t kSpillMinSetBytes = 256 * 1024;

} // namespace

FlatConfigSet::FlatConfigSet()
{
    allocate(kInitialSlots);
}

FlatConfigSet::~FlatConfigSet()
{
    release();
}

void
FlatConfigSet::allocate(size_t capacity)
{
    slots_ = nullptr;
    mapped_ = false;
    arena_ = nullptr;
    if (SpillArena *a = SpillArena::installed()) {
        if (capacity * sizeof(PackedConfig) >= kSpillMinSetBytes) {
            void *p = a->map(capacity * sizeof(PackedConfig));
            if (p) {
                slots_ = static_cast<PackedConfig *>(p);
                mapped_ = true;
                arena_ = a;
            }
        }
    }
    if (slots_ == nullptr)
        slots_ = new PackedConfig[capacity];
    capacity_ = capacity;
    mask_ = capacity - 1;
    // The bitmap is deliberately heap-resident: probes over empty
    // slots touch only it, so a mostly-cold mapped slot array is
    // never faulted in just to learn a slot is empty.
    bits_.assign(capacity / 64, 0);
}

void
FlatConfigSet::release()
{
    if (slots_ == nullptr)
        return;
    if (mapped_)
        arena_->unmap(slots_, capacity_ * sizeof(PackedConfig));
    else
        delete[] slots_;
    slots_ = nullptr;
}

bool
FlatConfigSet::contains(const PackedConfig &c) const
{
    size_t i = hashPacked(c) & mask_;
    while (occupied(i)) {
        if (slots_[i] == c)
            return true;
        i = (i + 1) & mask_;
    }
    return false;
}

PackedConfig *
FlatConfigSet::find(const PackedConfig &c)
{
    size_t i = hashPacked(c) & mask_;
    while (occupied(i)) {
        if (slots_[i] == c)
            return &slots_[i];
        i = (i + 1) & mask_;
    }
    return nullptr;
}

void
FlatConfigSet::clear()
{
    release();
    count_ = 0;
    allocate(kInitialSlots);
}

bool
FlatConfigSet::insert(const PackedConfig &c)
{
    size_t i = hashPacked(c) & mask_;
    while (occupied(i)) {
        if (slots_[i] == c)
            return false;
        i = (i + 1) & mask_;
    }
    slots_[i] = c;
    setOccupied(i);
    ++count_;
    // Keep the load factor below ~0.7 so probes stay short.
    if ((count_ + 1) * 10 > capacity_ * 7)
        grow();
    return true;
}

PackedConfig *
FlatConfigSet::insertOrFind(const PackedConfig &c, bool *inserted)
{
    size_t i = hashPacked(c) & mask_;
    while (occupied(i)) {
        if (slots_[i] == c) {
            *inserted = false;
            return &slots_[i];
        }
        i = (i + 1) & mask_;
    }
    slots_[i] = c;
    setOccupied(i);
    ++count_;
    *inserted = true;
    if ((count_ + 1) * 10 > capacity_ * 7) {
        grow();
        // The table moved; re-locate the entry just inserted.
        i = hashPacked(c) & mask_;
        while (!(slots_[i] == c))
            i = (i + 1) & mask_;
    }
    return &slots_[i];
}

void
FlatConfigSet::grow()
{
    PackedConfig *oldSlots = slots_;
    size_t oldCapacity = capacity_;
    bool oldMapped = mapped_;
    SpillArena *oldArena = arena_;
    std::vector<uint64_t> oldBits = std::move(bits_);

    allocate(oldCapacity * 2);
    for (size_t i = 0; i < oldCapacity; ++i) {
        if (!((oldBits[i >> 6] >> (i & 63)) & 1))
            continue;
        const PackedConfig &c = oldSlots[i];
        size_t j = hashPacked(c) & mask_;
        while (occupied(j))
            j = (j + 1) & mask_;
        slots_[j] = c;
        setOccupied(j);
    }
    if (oldMapped)
        oldArena->unmap(oldSlots,
                        oldCapacity * sizeof(PackedConfig));
    else
        delete[] oldSlots;
}

// ------------------------------------------------------------------
// VisitedSet
// ------------------------------------------------------------------

void
VisitedSet::configureSpill(SpillFile *file, size_t hotBudgetBytes)
{
    if (file == nullptr || !file->valid())
        return;
    spill_ = file;
    // At least one hot table's worth of entries between flushes, so
    // a pathological budget cannot flush on every insert.
    hotBudgetBytes_ =
        hotBudgetBytes < kSpillMinSetBytes ? kSpillMinSetBytes
                                           : hotBudgetBytes;
}

VisitedSet::ColdRef
VisitedSet::probeCold(const PackedConfig &c) const
{
    ColdRef ref;
    if (runs_.empty())
        return ref;
    const uint32_t h =
        static_cast<uint32_t>(hashPacked(c) >> 32);
    // Newest run first: converging paths mostly rejoin recently
    // flushed work, and a hit ends the scan.
    for (size_t r = runs_.size(); r-- > 0;) {
        const Run &run = runs_[r];
        auto it = std::lower_bound(run.prefixes.begin(),
                                   run.prefixes.end(), h);
        for (; it != run.prefixes.end() && *it == h; ++it) {
            const size_t idx =
                static_cast<size_t>(it - run.prefixes.begin());
            PackedConfig stored;
            if (!spill_->readAt(run.base +
                                    idx * sizeof(PackedConfig),
                                &stored, sizeof stored))
                CXL0_ASSERT(false, "visited spill read failed");
            if (stored == c) {
                ref.found = true;
                ref.run = r;
                ref.idx = idx;
                ref.entry = stored;
                return ref;
            }
        }
    }
    return ref;
}

void
VisitedSet::maybeFlush()
{
    if (spill_ == nullptr ||
        hot_.size() * sizeof(PackedConfig) < hotBudgetBytes_)
        return;
    // Sort the hot entries by content hash (ties broken by content,
    // so the run layout is schedule-independent for a given entry
    // set) and append them as one immutable run. Only the 4-byte
    // hash prefixes stay resident.
    std::vector<PackedConfig> entries;
    entries.reserve(hot_.size());
    hot_.forEach(
        [&](const PackedConfig &e) { entries.push_back(e); });
    std::sort(entries.begin(), entries.end(),
              [](const PackedConfig &a, const PackedConfig &b) {
                  const uint64_t ha = hashPacked(a),
                                 hb = hashPacked(b);
                  if (ha != hb)
                      return ha < hb;
                  if (a.state != b.state)
                      return a.state < b.state;
                  if (a.regs != b.regs)
                      return a.regs < b.regs;
                  if (a.pc != b.pc)
                      return a.pc < b.pc;
                  if (a.alive != b.alive)
                      return a.alive < b.alive;
                  return a.crash < b.crash;
              });
    Run run;
    run.base = spill_->append(entries.data(),
                              entries.size() *
                                  sizeof(PackedConfig));
    run.prefixes.reserve(entries.size());
    for (const PackedConfig &e : entries)
        run.prefixes.push_back(
            static_cast<uint32_t>(hashPacked(e) >> 32));
    coldCount_ += entries.size();
    runs_.push_back(std::move(run));
    hot_.clear();
}

bool
VisitedSet::contains(const PackedConfig &c) const
{
    return hot_.contains(c) || probeCold(c).found;
}

bool
VisitedSet::insert(const PackedConfig &c)
{
    if (hot_.contains(c) || probeCold(c).found)
        return false;
    hot_.insert(c);
    maybeFlush();
    return true;
}

VisitedSet::Admit
VisitedSet::admit(PackedConfig &c)
{
    if (PackedConfig *stored = hot_.find(c)) {
        const uint32_t both = stored->sleep & c.sleep;
        if (both == stored->sleep)
            return Admit::Duplicate;
        stored->sleep = both;
        c.sleep = both;
        return Admit::Readmitted;
    }
    ColdRef ref = probeCold(c);
    if (ref.found) {
        const uint32_t both = ref.entry.sleep & c.sleep;
        if (both == ref.entry.sleep)
            return Admit::Duplicate;
        ref.entry.sleep = both;
        if (!spill_->writeAt(runs_[ref.run].base +
                                 ref.idx * sizeof(PackedConfig),
                             &ref.entry, sizeof ref.entry))
            CXL0_ASSERT(false, "visited spill write-back failed");
        c.sleep = both;
        return Admit::Readmitted;
    }
    hot_.insert(c);
    maybeFlush();
    return Admit::Inserted;
}

void
ConfigFrontier::maybeSpill()
{
    const size_t live = memSize();
    if (live < 2 ||
        live * sizeof(PackedConfig) <= spillBudgetBytes_)
        return;
    // Spill the cold half — exactly the entries stealHalf would
    // take — as one contiguous block. The hot half keeps the
    // owner's locality; the block re-enters through pop() (or a
    // steal) once the hot part drains.
    const size_t k = live / 2;
    spillBuf_.clear();
    if (policy_ == FrontierPolicy::DepthFirst) {
        spillBuf_.insert(spillBuf_.end(),
                         stack_.begin() + static_cast<ptrdiff_t>(base_),
                         stack_.begin() +
                             static_cast<ptrdiff_t>(base_ + k));
        base_ += k;
        if (base_ > stack_.size() - base_) {
            // Same amortized compaction as stealHalf.
            stack_.erase(stack_.begin(),
                         stack_.begin() +
                             static_cast<ptrdiff_t>(base_));
            base_ = 0;
        }
    } else {
        spillBuf_.insert(spillBuf_.end(),
                         queue_.end() - static_cast<ptrdiff_t>(k),
                         queue_.end());
        queue_.erase(queue_.end() - static_cast<ptrdiff_t>(k),
                     queue_.end());
    }
    const size_t blockBytes = spillBuf_.size() * sizeof(PackedConfig);
    uint64_t off = spill_->append(spillBuf_.data(), blockBytes);
    blocks_.push_back(SpillBlock{off, spillBuf_.size()});
    spilledNow_ += spillBuf_.size();
    spilledTotal_ += spillBuf_.size();
    spillBytesTotal_ += blockBytes;
    spillBuf_.clear();
}

void
ConfigFrontier::refillFromSpill()
{
    SpillBlock b = blocks_.front();
    blocks_.pop_front();
    spillBuf_.resize(b.count);
    bool ok = spill_->readAt(b.offset, spillBuf_.data(),
                             b.count * sizeof(PackedConfig));
    CXL0_ASSERT(ok, "frontier spill block unreadable");
    // Bypass push(): a refilled block must not immediately re-spill.
    for (const PackedConfig &c : spillBuf_) {
        if (policy_ == FrontierPolicy::DepthFirst)
            stack_.push_back(c);
        else
            queue_.push_back(c);
    }
    spilledNow_ -= b.count;
    spillBuf_.clear();
    if (blocks_.empty())
        spill_->clear(); // fully drained: reclaim the file space
}

PackedConfig
ConfigFrontier::pop()
{
    if (memSize() == 0 && spilledNow_ != 0)
        refillFromSpill();
    if (policy_ == FrontierPolicy::DepthFirst) {
        PackedConfig c = stack_.back();
        stack_.pop_back();
        if (stack_.size() == base_) {
            // Drained to the stolen prefix: reclaim it.
            stack_.clear();
            base_ = 0;
        }
        return c;
    }
    PackedConfig c = queue_.front();
    queue_.pop_front();
    return c;
}

size_t
ConfigFrontier::stealHalf(std::vector<PackedConfig> &out)
{
    // A frontier whose live entries all sit in spill blocks is
    // nonempty but has nothing in memory: re-admit the oldest block
    // so the thief leaves with real work.
    if (memSize() == 0 && spilledNow_ != 0)
        refillFromSpill();
    if (policy_ == FrontierPolicy::DepthFirst) {
        size_t live = stack_.size() - base_;
        size_t k = (live + 1) / 2;
        out.insert(out.end(),
                   stack_.begin() + static_cast<ptrdiff_t>(base_),
                   stack_.begin() +
                       static_cast<ptrdiff_t>(base_ + k));
        base_ += k;
        if (stack_.size() == base_) {
            stack_.clear();
            base_ = 0;
        } else if (base_ > stack_.size() - base_) {
            // The stolen prefix outweighs the live suffix: compact.
            // Each compaction moves fewer entries than were stolen
            // since the last one, so the cost is amortized O(1) per
            // stolen configuration — no O(frontier) shift ever
            // happens under the victim's shard lock.
            stack_.erase(stack_.begin(),
                         stack_.begin() +
                             static_cast<ptrdiff_t>(base_));
            base_ = 0;
        }
        return k;
    }
    size_t k = (queue_.size() + 1) / 2;
    out.insert(out.end(), queue_.end() - static_cast<ptrdiff_t>(k),
               queue_.end());
    queue_.erase(queue_.end() - static_cast<ptrdiff_t>(k),
                 queue_.end());
    return k;
}

// ------------------------------------------------------------------
// ShardedFrontier
// ------------------------------------------------------------------

ShardedFrontier::ShardedFrontier(size_t nshards, FrontierPolicy policy)
{
    CXL0_ASSERT(nshards > 0, "a sharded frontier needs >= 1 shard");
    shards_.reserve(nshards);
    for (size_t i = 0; i < nshards; ++i)
        shards_.push_back(std::make_unique<Shard>(policy));
}

void
ShardedFrontier::send(size_t shard, const PackedConfig &c)
{
    pending_.fetch_add(1, std::memory_order_acq_rel);
    Shard &sh = *shards_[shard];
    {
        std::lock_guard<std::mutex> lock(sh.m);
        sh.inbox.push_back(c);
    }
    sh.cv.notify_one();
}

void
ShardedFrontier::sendBuffered(size_t w, size_t shard,
                              const PackedConfig &c)
{
    Shard &sh = *shards_[w];
    if (sh.outbox.empty())
        sh.outbox.resize(shards_.size());
    // Counted pending at buffer time: the termination barrier treats
    // a buffered config exactly like a delivered one, so batching
    // can never fake an empty search.
    pending_.fetch_add(1, std::memory_order_acq_rel);
    sh.outbox[shard].push_back(c);
    ++sh.outboxBuffered;
    if (sh.outbox[shard].size() >= kSendBatch)
        flushDest(sh, shard);
}

void
ShardedFrontier::flushOutbox(size_t w)
{
    Shard &sh = *shards_[w];
    if (sh.outboxBuffered == 0)
        return;
    for (size_t d = 0; d < sh.outbox.size(); ++d)
        if (!sh.outbox[d].empty())
            flushDest(sh, d);
}

void
ShardedFrontier::flushDest(Shard &sh, size_t dest)
{
    std::vector<PackedConfig> &block = sh.outbox[dest];
    Shard &dst = *shards_[dest];
    {
        std::lock_guard<std::mutex> lock(dst.m);
        dst.inbox.insert(dst.inbox.end(), block.begin(),
                         block.end());
    }
    dst.cv.notify_one();
    sh.outboxBuffered -= block.size();
    block.clear();
    ++sh.inboxBatches;
}

void
ShardedFrontier::pausePoint(size_t w)
{
    // Arrive with an empty outbox: once every worker is here, each
    // queued config sits in a frontier, a spill block, or an inbox —
    // the exact inventory the checkpoint callback serializes.
    flushOutbox(w);
    std::unique_lock<std::mutex> lock(pauseM_);
    if (!pausePending_.load(std::memory_order_acquire))
        return; // barrier already completed behind us
    const uint64_t epoch = pauseEpoch_;
    ++pauseArrived_;
    for (;;) {
        if (pauseEpoch_ != epoch || stopped())
            return;
        if (pauseArrived_ ==
            activeWorkers_.load(std::memory_order_relaxed)) {
            // Last arriver leads: the search is quiescent. The lock
            // is dropped around the callback — every other worker is
            // parked (arrived or exited), so nothing mutates the
            // rendezvous state meanwhile, and the callback may call
            // stopAll() (checkpoint-then-halt) without deadlocking
            // on pauseM_.
            if (pauseCb_) {
                lock.unlock();
                pauseCb_();
                lock.lock();
            }
            pausePending_.store(false, std::memory_order_release);
            pauseArrived_ = 0;
            ++pauseEpoch_;
            pauseCv_.notify_all();
            return;
        }
        pauseCv_.wait(lock);
    }
}

void
ShardedFrontier::workerExit(size_t w)
{
    flushOutbox(w);
    if (activeWorkers_.load(std::memory_order_acquire) == 0)
        return; // pause rendezvous never configured
    std::lock_guard<std::mutex> lock(pauseM_);
    activeWorkers_.fetch_sub(1, std::memory_order_acq_rel);
    // A pending rendezvous may now be complete without another
    // arrival; wake the waiters so one of them takes the lead
    // (pausePoint re-evaluates arrived == active on every wake).
    pauseCv_.notify_all();
}

void
ShardedFrontier::pushLocal(size_t w, const PackedConfig &c)
{
    pending_.fetch_add(1, std::memory_order_relaxed);
    Shard &sh = *shards_[w];
    // Increment stealable_ BEFORE the config becomes visible to
    // thieves: every decrement (local pop or steal) then has its
    // matching increment already applied, so the unsigned counter
    // can overcount transiently (a spurious, self-correcting wake)
    // but never wrap below zero (a busy-loop of always-true sleep
    // predicates). The increments/loads are sequentially consistent:
    // the flag/flag protocol against pop()'s sleep path guarantees
    // either this increment is visible to the sleeper's wait
    // predicate, or the sleeper's registration is visible here and
    // wakeAll() reaches it.
    stealable_.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(sh.m);
        sh.frontier.push(c);
    }
    if (sleepers_.load() > 0)
        wakeAll();
}

void
ShardedFrontier::pushMany(Shard &sh,
                          const std::vector<PackedConfig> &cs)
{
    // Increment-before-insert, as in pushLocal.
    stealable_.fetch_add(cs.size());
    {
        std::lock_guard<std::mutex> lock(sh.m);
        for (const PackedConfig &c : cs)
            sh.frontier.push(c);
    }
    if (sleepers_.load() > 0)
        wakeAll();
}

bool
ShardedFrontier::trySteal(size_t w)
{
    Shard &me = *shards_[w];
    const size_t n = shards_.size();
    for (size_t step = 1; step < n; ++step) {
        Shard &victim = *shards_[(w + step) % n];
        ++me.stealsAttempted;
        me.loot.clear();
        {
            std::lock_guard<std::mutex> lock(victim.m);
            if (!victim.frontier.empty())
                victim.frontier.stealHalf(me.loot);
        }
        if (me.loot.empty())
            continue;
        ++me.stealsSucceeded;
        if (me.ring != nullptr)
            me.ring->instant("steal", me.loot.size());
        // Net stealable count is unchanged — the loot re-enters a
        // frontier in pushMany — but decrement first so a sleeper
        // woken in between does not chase configurations already in
        // this thief's hands.
        stealable_.fetch_sub(me.loot.size());
        pushMany(me, me.loot);
        me.loot.clear();
        return true;
    }
    return false;
}

void
ShardedFrontier::stopAll()
{
    stop_.store(true, std::memory_order_release);
    wakeAll();
    // Release any workers parked at a pause rendezvous: their wait
    // loop re-checks stopped() on every wake.
    {
        std::lock_guard<std::mutex> lock(pauseM_);
    }
    pauseCv_.notify_all();
}

void
ShardedFrontier::wakeAll()
{
    for (auto &shard : shards_) {
        {
            std::lock_guard<std::mutex> lock(shard->m);
        }
        shard->cv.notify_all();
    }
}

void
runOnWorkers(size_t nworkers, const std::function<void(size_t)> &fn)
{
    if (nworkers <= 1) {
        fn(0);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(nworkers - 1);
    for (size_t w = 1; w < nworkers; ++w)
        threads.emplace_back([&fn, w] { fn(w); });
    fn(0);
    for (std::thread &t : threads)
        t.join();
}

size_t
ShardedFrontier::bytes(size_t w) const
{
    Shard &sh = *shards_[w];
    // drain and loot belong to worker w (the only legitimate
    // caller); the inbox is shared with senders and the frontier
    // with thieves, so their capacities are read under the shard
    // mutex.
    size_t shared_bytes;
    {
        std::lock_guard<std::mutex> lock(sh.m);
        shared_bytes = sh.inbox.capacity() * sizeof(PackedConfig) +
                       sh.frontier.bytes();
    }
    return shared_bytes +
           (sh.drain.capacity() + sh.loot.capacity()) *
               sizeof(PackedConfig);
}

// ------------------------------------------------------------------
// ModelContext
// ------------------------------------------------------------------

ModelContext::ModelContext(const Cxl0Model &model)
    : model_(model), numNodes_(model.config().numNodes()),
      states_(model.config().numNodes(), model.config().numAddrs()),
      frames_()
{
}

ModelContext::~ModelContext()
{
    // Published tau memos are heap vectors; reclaim them. Walk only
    // the segments that exist — never-touched slots are null.
    tauMemo_.forEachAllocated([](std::atomic<TauVec *> &slot) {
        delete slot.load(std::memory_order_acquire);
    });
}

size_t
ModelContext::bytes() const
{
    return states_.bytes() + frames_.bytes() + tauMemo_.bytes() +
           crashMemo_.bytes() + closureMemo_.bytes() +
           tauHeapBytes_.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------------
// ShardEngine
// ------------------------------------------------------------------

ShardEngine::ShardEngine(ModelContext &ctx)
    : ctx_(ctx), scratch_(ctx.model().initialState()), work_(scratch_)
{
}

const std::vector<std::pair<Addr, StateId>> &
ShardEngine::tauSuccessorsOf(StateId s)
{
    std::atomic<ModelContext::TauVec *> &slot = ctx_.tauSlot(s);
    ModelContext::TauVec *have =
        slot.load(std::memory_order_acquire);
    if (have)
        return *have;

    ctx_.states().materialize(s, scratch_);
    ctx_.model().tauMoves(scratch_, moveBuf_);
    auto *fresh = new ModelContext::TauVec;
    fresh->reserve(moveBuf_.size());
    for (const TauMove &m : moveBuf_) {
        work_ = scratch_;
        ctx_.model().applyTauInPlace(work_, m);
        fresh->emplace_back(m.addr, ctx_.states().intern(work_));
    }
    ModelContext::TauVec *expected = nullptr;
    if (slot.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        ctx_.tauHeapBytes_.fetch_add(
            sizeof(ModelContext::TauVec) +
                fresh->capacity() *
                    sizeof(std::pair<Addr, StateId>),
            std::memory_order_relaxed);
        return *fresh;
    }
    // Another worker published the same answer first.
    delete fresh;
    return *expected;
}

StateId
ShardEngine::crashSuccessorOf(StateId s, NodeId n)
{
    std::atomic<uint32_t> &slot = ctx_.crashSlot(s, n);
    uint32_t enc = slot.load(std::memory_order_acquire);
    if (enc)
        return enc - 1;
    ctx_.states().materialize(s, scratch_);
    ctx_.model().applyCrashInPlace(scratch_, n);
    StateId succ = ctx_.states().intern(scratch_);
    // Racing workers compute the same successor and intern the same
    // content, hence store the same id: publication is idempotent.
    slot.store(succ + 1, std::memory_order_release);
    return succ;
}

FrameId
ShardEngine::closedSingleton(const State &s)
{
    idBuf_.clear();
    idBuf_.push_back(ctx_.states().intern(s));
    return tauClosureFrame(ctx_.frames().intern(idBuf_));
}

FrameId
ShardEngine::tauClosureOfRaw(std::vector<StateId> &ids)
{
    // BFS over the member states through the memoized per-state tau
    // successors. Mark states with an epoch stamp instead of a
    // per-call set allocation. Epoch 0 means "never marked", so on
    // wraparound the marks must be wiped before reuse.
    if (++epoch_ == 0) {
        std::fill(mark_.begin(), mark_.end(), 0);
        epoch_ = 1;
    }
    if (mark_.size() < ctx_.states().size())
        mark_.resize(ctx_.states().size(), 0);
    size_t keep = 0;
    for (StateId id : ids) {
        if (mark_[id] != epoch_) {
            mark_[id] = epoch_;
            ids[keep++] = id;
        }
    }
    ids.resize(keep);
    for (size_t head = 0; head < ids.size(); ++head) {
        const auto &tau = tauSuccessorsOf(ids[head]);
        for (const auto &[addr, succ] : tau) {
            (void)addr;
            if (mark_.size() <= succ)
                mark_.resize(ctx_.states().size(), 0);
            if (mark_[succ] != epoch_) {
                mark_[succ] = epoch_;
                ids.push_back(succ);
            }
        }
    }
    return ctx_.frames().intern(ids);
}

FrameId
ShardEngine::tauClosureFrame(FrameId f)
{
    std::atomic<uint32_t> &slot = ctx_.closureSlot(f);
    uint32_t enc = slot.load(std::memory_order_acquire);
    if (enc)
        return enc - 1;

    std::vector<StateId> result(ctx_.frames().begin(f),
                                ctx_.frames().end(f));
    FrameId closed = tauClosureOfRaw(result);

    // Idempotent publication (racers compute the same closed frame),
    // and closure is idempotent: the closed frame closes to itself.
    slot.store(closed + 1, std::memory_order_release);
    ctx_.closureSlot(closed).store(closed + 1,
                                   std::memory_order_release);
    return closed;
}

bool
ShardEngine::applyFrameRaw(FrameId f, const Label &label,
                           std::vector<StateId> &out)
{
    out.clear();
    // The frame span's address is stable (segmented arena), so the
    // span stays valid while the state table grows under it.
    const StateId *it = ctx_.frames().begin(f);
    const StateId *last = ctx_.frames().end(f);
    for (; it != last; ++it) {
        ctx_.states().materialize(*it, scratch_);
        if (ctx_.model().applyInPlace(scratch_, label))
            out.push_back(ctx_.states().intern(scratch_));
    }
    return !out.empty();
}

FrameId
ShardEngine::applyFrame(FrameId f, const Label &label)
{
    if (!applyFrameRaw(f, label, idBuf_))
        return kNoFrameId;
    return ctx_.frames().intern(idBuf_);
}

void
ShardEngine::materializeFrame(FrameId f, std::vector<State> &out) const
{
    out.clear();
    out.reserve(ctx_.frames().sizeOf(f));
    const StateId *it = ctx_.frames().begin(f);
    const StateId *last = ctx_.frames().end(f);
    for (; it != last; ++it)
        out.push_back(ctx_.states().materialize(*it));
}

bool
ShardEngine::frameSubsumes(FrameId sup, FrameId sub) const
{
    const StateId *a = ctx_.frames().begin(sub);
    const StateId *ae = ctx_.frames().end(sub);
    const StateId *b = ctx_.frames().begin(sup);
    const StateId *be = ctx_.frames().end(sup);
    while (a != ae) {
        while (b != be && *b < *a)
            ++b;
        if (b == be || *b != *a)
            return false;
        ++a;
    }
    return true;
}

size_t
ShardEngine::bytes() const
{
    return mark_.capacity() * sizeof(uint32_t) +
           idBuf_.capacity() * sizeof(StateId) +
           moveBuf_.capacity() * sizeof(TauMove) +
           2 * (scratch_.cacheLines().capacity() +
                scratch_.memLines().capacity()) *
               sizeof(Value);
}

// ------------------------------------------------------------------
// SearchEngine
// ------------------------------------------------------------------

SearchEngine::SearchEngine(const Cxl0Model &model)
    : SearchEngine(std::make_unique<ModelContext>(model))
{
}

SearchEngine::SearchEngine(std::unique_ptr<ModelContext> ctx)
    : ShardEngine(*ctx), own_(std::move(ctx))
{
}

} // namespace cxl0::check
