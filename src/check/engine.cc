#include "check/engine.hh"

#include <algorithm>
#include <sstream>

#include "common/hashmix.hh"
#include "common/logging.hh"

namespace cxl0::check
{

using model::kNoFrameId;
using model::kNoStateId;
using model::TauMove;

const char *
checkVerdictName(CheckVerdict v)
{
    switch (v) {
      case CheckVerdict::Pass:
        return "pass";
      case CheckVerdict::Fail:
        return "fail";
      case CheckVerdict::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

std::string
Counterexample::describe() const
{
    if (empty())
        return "(none)";
    std::ostringstream os;
    if (!trace.empty())
        os << "[" << model::describeTrace(trace) << "]";
    if (!description.empty()) {
        if (!trace.empty())
            os << " ";
        os << description;
    }
    return os.str();
}

bool
Outcome::operator<(const Outcome &other) const
{
    if (crashedThreads != other.crashedThreads)
        return crashedThreads < other.crashedThreads;
    return regs < other.regs;
}

bool
Outcome::operator==(const Outcome &other) const
{
    return crashedThreads == other.crashedThreads && regs == other.regs;
}

std::string
Outcome::describe() const
{
    std::ostringstream os;
    for (size_t t = 0; t < regs.size(); ++t) {
        os << "T" << t << ((crashedThreads >> t) & 1 ? "(crashed)" : "")
           << "[";
        for (size_t r = 0; r < regs[t].size(); ++r)
            os << (r ? "," : "") << regs[t][r];
        os << "] ";
    }
    return os.str();
}

std::string
CheckReport::describe() const
{
    std::ostringstream os;
    os << checkVerdictName(verdict);
    if (truncated)
        os << " (truncated)";
    if (!outcomes.empty())
        os << ", " << outcomes.size() << " outcomes";
    if (verdict == CheckVerdict::Fail)
        os << ", counterexample: " << counterexample.describe();
    os << " [" << stats.configsVisited << " configs, "
       << stats.statesInterned << " states, " << stats.framesInterned
       << " frames]";
    return os.str();
}

uint64_t
hashPacked(const PackedConfig &c)
{
    uint64_t h =
        mixBits((static_cast<uint64_t>(c.state) << 32) ^ c.regs);
    h = mixBits(h ^ c.pc);
    h = mixBits(h ^ (static_cast<uint64_t>(c.alive) << 32) ^ c.crash);
    return h;
}

// ------------------------------------------------------------------
// FlatConfigSet
// ------------------------------------------------------------------

namespace
{

constexpr size_t kInitialSlots = 64;

} // namespace

FlatConfigSet::FlatConfigSet()
    : slots_(kInitialSlots, empty()), mask_(kInitialSlots - 1)
{
}

PackedConfig
FlatConfigSet::empty()
{
    PackedConfig c;
    c.state = kNoStateId;
    return c;
}

bool
FlatConfigSet::contains(const PackedConfig &c) const
{
    size_t i = hashPacked(c) & mask_;
    while (slots_[i].state != kNoStateId) {
        if (slots_[i] == c)
            return true;
        i = (i + 1) & mask_;
    }
    return false;
}

bool
FlatConfigSet::insert(const PackedConfig &c)
{
    size_t i = hashPacked(c) & mask_;
    while (slots_[i].state != kNoStateId) {
        if (slots_[i] == c)
            return false;
        i = (i + 1) & mask_;
    }
    slots_[i] = c;
    ++count_;
    // Keep the load factor below ~0.7 so probes stay short.
    if ((count_ + 1) * 10 > slots_.size() * 7)
        grow();
    return true;
}

void
FlatConfigSet::grow()
{
    std::vector<PackedConfig> bigger(slots_.size() * 2, empty());
    size_t mask = bigger.size() - 1;
    for (const PackedConfig &c : slots_) {
        if (c.state == kNoStateId)
            continue;
        size_t i = hashPacked(c) & mask;
        while (bigger[i].state != kNoStateId)
            i = (i + 1) & mask;
        bigger[i] = c;
    }
    slots_ = std::move(bigger);
    mask_ = mask;
}

PackedConfig
ConfigFrontier::pop()
{
    if (policy_ == FrontierPolicy::DepthFirst) {
        PackedConfig c = stack_.back();
        stack_.pop_back();
        return c;
    }
    PackedConfig c = queue_.front();
    queue_.pop_front();
    return c;
}

// ------------------------------------------------------------------
// SearchEngine
// ------------------------------------------------------------------

SearchEngine::SearchEngine(const Cxl0Model &model)
    : model_(model),
      states_(model.config().numNodes(), model.config().numAddrs()),
      frames_(), scratch_(model.initialState()), work_(scratch_)
{
}

SearchEngine::StateSuccs &
SearchEngine::succsFor(StateId s)
{
    if (succs_.size() <= s)
        succs_.resize(states_.size());
    return succs_[s];
}

const std::vector<std::pair<Addr, StateId>> &
SearchEngine::tauSuccessorsOf(StateId s)
{
    StateSuccs &e = succsFor(s);
    if (!e.tauDone) {
        states_.materialize(s, scratch_);
        model_.tauMoves(scratch_, moveBuf_);
        std::vector<std::pair<Addr, StateId>> tau;
        tau.reserve(moveBuf_.size());
        for (const TauMove &m : moveBuf_) {
            work_ = scratch_;
            model_.applyTauInPlace(work_, m);
            tau.emplace_back(m.addr, states_.intern(work_));
        }
        succHeapBytes_ +=
            tau.capacity() * sizeof(std::pair<Addr, StateId>);
        succs_[s].tau = std::move(tau);
        succs_[s].tauDone = true;
    }
    return succs_[s].tau;
}

StateId
SearchEngine::crashSuccessorOf(StateId s, NodeId n)
{
    StateSuccs &e = succsFor(s);
    if (e.crash.empty()) {
        e.crash.assign(model_.config().numNodes(), kNoStateId);
        succHeapBytes_ += e.crash.capacity() * sizeof(StateId);
    }
    if (e.crash[n] == kNoStateId) {
        states_.materialize(s, scratch_);
        model_.applyCrashInPlace(scratch_, n);
        StateId succ = states_.intern(scratch_);
        succs_[s].crash[n] = succ;
        return succ;
    }
    return e.crash[n];
}

FrameId
SearchEngine::closedSingleton(const State &s)
{
    idBuf_.clear();
    idBuf_.push_back(states_.intern(s));
    return tauClosureFrame(frames_.intern(idBuf_));
}

FrameId
SearchEngine::tauClosureOfRaw(std::vector<StateId> &ids)
{
    // BFS over the member states through the memoized per-state tau
    // successors. Mark states with an epoch stamp instead of a
    // per-call set allocation.
    ++epoch_;
    if (mark_.size() < states_.size())
        mark_.resize(states_.size(), 0);
    size_t keep = 0;
    for (StateId id : ids) {
        if (mark_[id] != epoch_) {
            mark_[id] = epoch_;
            ids[keep++] = id;
        }
    }
    ids.resize(keep);
    for (size_t head = 0; head < ids.size(); ++head) {
        const auto &tau = tauSuccessorsOf(ids[head]);
        for (const auto &[addr, succ] : tau) {
            (void)addr;
            if (mark_.size() <= succ)
                mark_.resize(states_.size(), 0);
            if (mark_[succ] != epoch_) {
                mark_[succ] = epoch_;
                ids.push_back(succ);
            }
        }
    }
    return frames_.intern(ids);
}

FrameId
SearchEngine::tauClosureFrame(FrameId f)
{
    if (f < closureMemo_.size() && closureMemo_[f] != kNoFrameId)
        return closureMemo_[f];

    std::vector<StateId> result(frames_.begin(f), frames_.end(f));
    FrameId closed = tauClosureOfRaw(result);

    if (closureMemo_.size() < frames_.size())
        closureMemo_.resize(frames_.size(), kNoFrameId);
    closureMemo_[f] = closed;
    closureMemo_[closed] = closed; // closure is idempotent
    return closed;
}

bool
SearchEngine::applyFrameRaw(FrameId f, const Label &label,
                            std::vector<StateId> &out)
{
    out.clear();
    // The frame span stays put while only the state table grows (the
    // frame arena is untouched during this loop).
    const StateId *it = frames_.begin(f);
    const StateId *last = frames_.end(f);
    for (; it != last; ++it) {
        states_.materialize(*it, scratch_);
        if (model_.applyInPlace(scratch_, label))
            out.push_back(states_.intern(scratch_));
    }
    return !out.empty();
}

FrameId
SearchEngine::applyFrame(FrameId f, const Label &label)
{
    if (!applyFrameRaw(f, label, idBuf_))
        return kNoFrameId;
    return frames_.intern(idBuf_);
}

void
SearchEngine::materializeFrame(FrameId f, std::vector<State> &out) const
{
    out.clear();
    out.reserve(frames_.sizeOf(f));
    const StateId *it = frames_.begin(f);
    const StateId *last = frames_.end(f);
    for (; it != last; ++it)
        out.push_back(states_.materialize(*it));
}

bool
SearchEngine::frameSubsumes(FrameId sup, FrameId sub) const
{
    const StateId *a = frames_.begin(sub), *ae = frames_.end(sub);
    const StateId *b = frames_.begin(sup), *be = frames_.end(sup);
    while (a != ae) {
        while (b != be && *b < *a)
            ++b;
        if (b == be || *b != *a)
            return false;
        ++a;
    }
    return true;
}

size_t
SearchEngine::bytes() const
{
    // O(1): the memo heap total is maintained incrementally, so
    // checkers can sample peak memory inside their hot loops.
    return states_.bytes() + frames_.bytes() +
           succs_.capacity() * sizeof(StateSuccs) + succHeapBytes_ +
           closureMemo_.capacity() * sizeof(FrameId) +
           mark_.capacity() * sizeof(uint32_t);
}

} // namespace cxl0::check
