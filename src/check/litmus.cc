#include "check/litmus.hh"

namespace cxl0::check
{

using model::Label;
using model::MachineConfig;
using model::ModelVariant;
using model::SystemConfig;

std::string
verdictName(Verdict v)
{
    return v == Verdict::Allowed ? "Allowed (v)" : "Forbidden (x)";
}

Verdict
runLitmus(const LitmusTest &test, ModelVariant variant)
{
    Cxl0Model model(test.config, variant);
    TraceChecker checker(model);
    return checker.feasible(test.trace) ? Verdict::Allowed
                                        : Verdict::Forbidden;
}

bool
litmusMatchesPaper(const LitmusTest &test)
{
    return runLitmus(test, ModelVariant::Base) == test.expectBase &&
           runLitmus(test, ModelVariant::Lwb) == test.expectLwb &&
           runLitmus(test, ModelVariant::Psn) == test.expectPsn;
}

namespace
{

/** n machines, all with non-volatile memory, owner vector as given. */
SystemConfig
nvConfig(size_t nodes, std::vector<NodeId> owner)
{
    return SystemConfig(
        std::vector<MachineConfig>(nodes, MachineConfig{true}),
        std::move(owner));
}

/** Machine 0 has NVMM, machine 1 volatile memory; one address on 0. */
SystemConfig
variantConfig()
{
    return SystemConfig({MachineConfig{true}, MachineConfig{false}},
                        {0});
}

} // namespace

std::vector<LitmusTest>
figure3Tests()
{
    // Paper machines are 1-indexed; nodes here are 0-indexed. All
    // memory in tests 1-9 is non-volatile (§3.4).
    std::vector<LitmusTest> tests;

    // Test 1: RStore1(x1,1); E1; Load1(x1,0) -- allowed. RStore does
    // not guarantee propagation to persistence before the crash.
    tests.push_back(LitmusTest{
        1, "RStore lost on owner crash",
        "an RStore may be lost if the owner crashes before propagation",
        nvConfig(1, {0}),
        {Label::rstore(0, 0, 1), Label::crash(0), Label::load(0, 0, 0)},
        Verdict::Allowed, Verdict::Allowed, Verdict::Allowed});

    // Test 2: MStore1(x1,1); E1; Load1(x1,0) -- forbidden. MStore
    // persists before returning.
    tests.push_back(LitmusTest{
        2, "MStore survives crash",
        "MStore guarantees persistence of the update before it returns",
        nvConfig(1, {0}),
        {Label::mstore(0, 0, 1), Label::crash(0), Label::load(0, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    // Test 3: LStore1(x1,1); LFlush1(x1); E1; Load1(x1,0) -- forbidden.
    // The flush drains the local line to local persistent memory.
    tests.push_back(LitmusTest{
        3, "LStore+LFlush to local NVMM survives",
        "a value cannot be lost if flushed to local persistence",
        nvConfig(1, {0}),
        {Label::lstore(0, 0, 1), Label::lflush(0, 0), Label::crash(0),
         Label::load(0, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    // Test 4: LStore1(x2,1); LFlush1(x2); E2; Load1(x2,0) -- allowed.
    // LFlush only reaches the remote owner's *cache*; the owner's
    // crash loses the value. x2 lives on machine 2 (node 1).
    tests.push_back(LitmusTest{
        4, "LFlush to remote cache insufficient",
        "a stored value may be lost if it has not reached remote "
        "persistent memory",
        nvConfig(2, {1}),
        {Label::lstore(0, 0, 1), Label::lflush(0, 0), Label::crash(1),
         Label::load(0, 0, 0)},
        Verdict::Allowed, Verdict::Allowed, Verdict::Allowed});

    // Test 5: LStore1(x2,1); RFlush1(x2); E2; Load1(x2,0) -- forbidden.
    // RFlush requires full propagation to the owner's memory.
    tests.push_back(LitmusTest{
        5, "RFlush reaches remote persistence",
        "the stronger RFlush prevents the loss of the stored value",
        nvConfig(2, {1}),
        {Label::lstore(0, 0, 1), Label::rflush(0, 0), Label::crash(1),
         Label::load(0, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    // Test 6: LStore1(x3,1); Load2(x3,1); E1; Load2(x3,0) -- forbidden.
    // The load copies the value into machine 2's cache, so machine 1's
    // crash cannot lose it. x3 lives on machine 3 (node 2).
    tests.push_back(LitmusTest{
        6, "loads replicate into the reader's cache",
        "copying on load prevents loss when the writer crashes",
        nvConfig(3, {2}),
        {Label::lstore(0, 0, 1), Label::load(1, 0, 1), Label::crash(0),
         Label::load(1, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    // Test 7: LStore1(x3,1); Load2(x3,1); LFlush2(x3); E1; E2;
    // Load2(x3,0) -- forbidden. The flush pushes the replica to the
    // owner (machine 3), outside both crashing machines.
    tests.push_back(LitmusTest{
        7, "flushed replica survives double crash",
        "the flush by machine 2 moves the value to the owner's domain",
        nvConfig(3, {2}),
        {Label::lstore(0, 0, 1), Label::load(1, 0, 1),
         Label::lflush(1, 0), Label::crash(0), Label::crash(1),
         Label::load(1, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    // Test 8: RStore1(x2,1); RStore2(y1,x2); E2; Load1(y1,1);
    // Load1(x2,0) -- allowed. A later operation's effect (y1=1) can
    // survive while the earlier observed value (x2=1) is lost.
    // Addresses: addr 0 = y1 (owner node 0), addr 1 = x2 (owner 1).
    // RStore2(y1,x2) abbreviates a load of x2 then RStore of y1 (§3.4).
    tests.push_back(LitmusTest{
        8, "observed value lost, dependent write persists",
        "a recovered state may include a later operation without the "
        "earlier one it observed",
        nvConfig(2, {0, 1}),
        {Label::rstore(0, 1, 1), Label::load(1, 1, 1),
         Label::rstore(1, 0, 1), Label::crash(1), Label::load(0, 0, 1),
         Label::load(0, 1, 0)},
        Verdict::Allowed, Verdict::Allowed, Verdict::Allowed});

    // Test 9: MStore1(x2,1); RStore2(y1,x2); E2; Load1(y1,1);
    // Load1(x2,0) -- forbidden. MStore for the first write rules out
    // the inconsistent recovery.
    tests.push_back(LitmusTest{
        9, "MStore forecloses inconsistent recovery",
        "using MStore for the first write makes the inconsistent state "
        "unreachable",
        nvConfig(2, {0, 1}),
        {Label::mstore(0, 1, 1), Label::load(1, 1, 1),
         Label::rstore(1, 0, 1), Label::crash(1), Label::load(0, 0, 1),
         Label::load(0, 1, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    return tests;
}

std::vector<LitmusTest>
variantTests()
{
    // §3.5: machine 1 (node 0) has NVMM, machine 2 (node 1) volatile
    // memory; x1 lives on machine 1. Verdict triples are
    // (CXL0, CXL0_LWB, CXL0_PSN) as reported in the paper.
    std::vector<LitmusTest> tests;

    // Test 10: RStore2(x1,1); Load2(x1,1); E1; Load2(x1,0) --
    // (allowed, forbidden, allowed).
    tests.push_back(LitmusTest{
        10, "remote load caches a doomed value",
        "LWB forces remote loads through memory, so the observed value "
        "must have persisted",
        variantConfig(),
        {Label::rstore(1, 0, 1), Label::load(1, 0, 1), Label::crash(0),
         Label::load(1, 0, 0)},
        Verdict::Allowed, Verdict::Forbidden, Verdict::Allowed});

    // Test 11: LStore1(x1,1); Load2(x1,1); E1; Load1(x1,0) --
    // (allowed, forbidden, allowed).
    tests.push_back(LitmusTest{
        11, "owner store observed then lost",
        "same as test 10 with the initial RStore replaced by the "
        "owner's LStore",
        variantConfig(),
        {Label::lstore(0, 0, 1), Label::load(1, 0, 1), Label::crash(0),
         Label::load(0, 0, 0)},
        Verdict::Allowed, Verdict::Forbidden, Verdict::Allowed});

    // Test 12: LStore2(x1,1); E1; Load1(x1,1); E1; Load2(x1,0) --
    // (allowed, allowed, forbidden).
    tests.push_back(LitmusTest{
        12, "poisoning cuts cross-crash inconsistency",
        "PSN poisons remotely cached lines at the first crash, so the "
        "value cannot resurface and then vanish",
        variantConfig(),
        {Label::lstore(1, 0, 1), Label::crash(0), Label::load(0, 0, 1),
         Label::crash(0), Label::load(1, 0, 0)},
        Verdict::Allowed, Verdict::Allowed, Verdict::Forbidden});

    return tests;
}

LitmusTest
motivatingExample()
{
    // §6 test 13: x=1; r1=x; r2=x; assert(r1==r2) on M1 with x on M2.
    // The trace below is the assertion-violating behaviour r1=1,
    // r2=0; it is *feasible* (the paper marks the program with a
    // cross: the assertion can fail).
    return LitmusTest{
        13, "remote crash breaks read-after-read",
        "a remote machine's crash can affect the correctness of a "
        "local program",
        nvConfig(2, {1}),
        {Label::lstore(0, 0, 1), Label::load(0, 0, 1), Label::crash(1),
         Label::load(0, 0, 0)},
        Verdict::Allowed, Verdict::Allowed, Verdict::Allowed};
}

std::vector<LitmusTest>
allTests()
{
    std::vector<LitmusTest> tests = figure3Tests();
    for (LitmusTest &t : variantTests())
        tests.push_back(std::move(t));
    tests.push_back(motivatingExample());
    return tests;
}

LitmusProgram
litmus4Program()
{
    LitmusProgram lp{4, "litmus-4: LFlush to remote cache insufficient",
                     nvConfig(2, {1}), // x0 owned by node 1
                     ModelVariant::Base, Program{}, ExploreOptions{}};
    Program p;
    p.threads.push_back(
        {0,
         {ProgInstr::store(Op::LStore, 0, Operand::immediate(1)),
          ProgInstr::flush(Op::LFlush, 0), ProgInstr::load(0, 0)}});
    lp.program = std::move(p);
    lp.options.maxCrashesPerNode = 1;
    lp.options.crashableNodes = {1}; // only the remote owner crashes
    return lp;
}

LitmusProgram
motivatingProgram()
{
    LitmusProgram lp{13,
                     "section-6: x=1; r1=x; r2=x under a remote crash",
                     nvConfig(2, {0}), // x0 owned by node 0 ("M2")
                     ModelVariant::Base, Program{}, ExploreOptions{}};
    Program p;
    p.threads.push_back(
        {1,
         {ProgInstr::store(Op::LStore, 0, Operand::immediate(1)),
          ProgInstr::load(0, 0), ProgInstr::load(0, 1)}});
    lp.program = std::move(p);
    lp.options.maxCrashesPerNode = 1;
    lp.options.crashableNodes = {0};
    return lp;
}

namespace
{

/**
 * Shared shape of the §3.5-style message-passing programs 14-16: a
 * writer on machine 0 stores data (addr 0) then flag (addr 1), both
 * owned by a crashable machine 1, then reads flag into r0 and data
 * into r1. The store flavour (and an optional GPF) decides whether
 * the flag can outlive the data, i.e. whether (r0,r1) = (1,0) is
 * reachable.
 */
LitmusProgram
messagePassingProgram(int id, const std::string &name, Op flavour,
                      bool gpf_between)
{
    LitmusProgram lp{id, name, nvConfig(2, {1, 1}),
                     ModelVariant::Base, Program{}, ExploreOptions{}};
    std::vector<ProgInstr> code{
        ProgInstr::store(flavour, 0, Operand::immediate(1)),
        ProgInstr::store(flavour, 1, Operand::immediate(1))};
    if (gpf_between)
        code.push_back(ProgInstr::gpf());
    code.push_back(ProgInstr::load(1, 0));
    code.push_back(ProgInstr::load(0, 1));
    lp.program.threads.push_back({0, std::move(code)});
    lp.options.maxCrashesPerNode = 1;
    lp.options.crashableNodes = {1}; // only the owner crashes
    return lp;
}

} // namespace

LitmusProgram
litmus14Program()
{
    return messagePassingProgram(
        14, "litmus-14: persistent message passing", Op::MStore,
        false);
}

LitmusProgram
litmus15Program()
{
    return messagePassingProgram(
        15, "litmus-15: cached message passing splits under crash",
        Op::LStore, false);
}

LitmusProgram
litmus16Program()
{
    return messagePassingProgram(16, "litmus-16: GPF as a barrier",
                                 Op::LStore, true);
}

LitmusProgram
litmus17Program()
{
    // Tests 17+18 in one program: both RMW flavours against a
    // crashable owner. d (addr 0) takes an L-RMW FAA, f (addr 1) an
    // M-RMW CAS; read-backs expose which update survived the crash.
    LitmusProgram lp{17, "litmus-17: RMW flavours under owner crash",
                     nvConfig(2, {1, 1}), ModelVariant::Base,
                     Program{}, ExploreOptions{}};
    lp.program.threads.push_back(
        {0,
         {ProgInstr::faa(Op::LRmw, 0, Operand::immediate(1), 0),
          ProgInstr::cas(Op::MRmw, 1, Operand::immediate(0),
                         Operand::immediate(1), 1),
          ProgInstr::load(0, 2), ProgInstr::load(1, 3)}});
    lp.options.maxCrashesPerNode = 1;
    lp.options.crashableNodes = {1}; // only the owner crashes
    return lp;
}

LitmusProgram
litmus12Program()
{
    // Test 12's shape as a program under the *Base* model: machine 0
    // (NVMM) owns x; the writer on machine 1 stores and reads twice
    // while machine 0 may crash twice. Every placement of the two
    // crashes is explored, unlike the serialized trace that pins
    // them between the reads.
    LitmusProgram lp{12, "litmus-12: double owner crash schedules",
                     variantConfig(), ModelVariant::Base, Program{},
                     ExploreOptions{}};
    lp.program.threads.push_back(
        {1,
         {ProgInstr::store(Op::LStore, 0, Operand::immediate(1)),
          ProgInstr::load(0, 0), ProgInstr::load(0, 1)}});
    lp.options.maxCrashesPerNode = 2;
    lp.options.crashableNodes = {0};
    return lp;
}

std::vector<LitmusProgram>
explorerPrograms()
{
    return {litmus4Program(),  motivatingProgram(),
            litmus14Program(), litmus15Program(),
            litmus16Program(), litmus17Program(),
            litmus12Program()};
}

std::vector<LitmusTest>
extendedTests()
{
    // Two machines, both NVMM; addr 0 ("d", data) and addr 1 ("f",
    // flag) both live on machine 1; machine 0 is the writer.
    SystemConfig cfg = nvConfig(2, {1, 1});
    std::vector<LitmusTest> tests;

    // Test 14: persistent message passing. Both MStores persist
    // before returning, so the flag cannot outlive the data.
    tests.push_back(LitmusTest{
        14, "persistent message passing",
        "MStores persist in program order; the flag cannot be seen "
        "without the data after the owner's crash",
        cfg,
        {Label::mstore(0, 0, 1), Label::mstore(0, 1, 1),
         Label::crash(1), Label::load(0, 1, 1), Label::load(0, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    // Test 15: unflushed stores to the same remote owner can persist
    // out of program order — the data may drain and die while the
    // flag survives in the writer's cache (or persists first).
    tests.push_back(LitmusTest{
        15, "cached message passing splits under partial crash",
        "without flushes, nondeterministic propagation can persist "
        "the later store and lose the earlier one",
        cfg,
        {Label::lstore(0, 0, 1), Label::lstore(0, 1, 1),
         Label::crash(1), Label::load(0, 1, 1), Label::load(0, 0, 0)},
        Verdict::Allowed, Verdict::Allowed, Verdict::Allowed});

    // Test 16: GPF is a global persistence barrier: after it, no
    // store issued before it can be lost.
    tests.push_back(LitmusTest{
        16, "GPF as a global barrier",
        "GPF drains every cache, so both stores are persistent before "
        "the crash",
        cfg,
        {Label::lstore(0, 0, 1), Label::lstore(0, 1, 1),
         Label::gpf(0), Label::crash(1), Label::load(0, 1, 1),
         Label::load(0, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    // Test 17: a successful L-RMW is as fragile as an LStore.
    tests.push_back(LitmusTest{
        17, "L-RMW lost on owner crash",
        "L-RMW completes in the issuer's cache; its update can vanish "
        "exactly like an LStore's",
        cfg,
        {Label::lrmw(0, 0, 0, 1), Label::crash(1),
         Label::load(0, 0, 0)},
        Verdict::Allowed, Verdict::Allowed, Verdict::Allowed});

    // Test 18: M-RMW persists before returning.
    tests.push_back(LitmusTest{
        18, "M-RMW survives owner crash",
        "M-RMW reaches the owner's memory atomically; the update "
        "cannot be lost",
        cfg,
        {Label::mrmw(0, 0, 0, 1), Label::crash(1),
         Label::load(0, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    // Test 19: an RFlush between the stores orders their persistence
    // (the FliT write discipline in miniature).
    tests.push_back(LitmusTest{
        19, "RFlush orders persistence",
        "once the data is RFlushed, observing any later state cannot "
        "lose it",
        cfg,
        {Label::lstore(0, 0, 1), Label::rflush(0, 0),
         Label::lstore(0, 1, 1), Label::crash(1), Label::load(0, 1, 1),
         Label::load(0, 0, 0)},
        Verdict::Forbidden, Verdict::Forbidden, Verdict::Forbidden});

    return tests;
}

} // namespace cxl0::check
