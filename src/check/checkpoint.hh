/**
 * @file
 * Out-of-core options and checkpoint/resume snapshots for the
 * sharded searches.
 *
 * A checkpoint is a full, self-contained snapshot of an explorer
 * search taken at a quiescent pause barrier (every worker parked
 * between configurations with its outbox flushed — see
 * ShardedFrontier::configurePause): the interning tables in id
 * order, each worker's visited set, emitted outcomes and partial
 * stats, and each shard's queued frontier (spilled blocks included)
 * and undelivered inbox. Restoring replays the tables by
 * re-interning in id order — dense ids come from one counter, so a
 * fresh table reassigns exactly the same ids — and re-pushes the
 * frontiers, after which the search continues to the bit-identical
 * outcome set and configsInterned count the uninterrupted run
 * produces.
 *
 * These options deliberately do NOT live in CheckRequest: a request
 * is a content-addressed cache key (check/cache.hh), and where a
 * search spills or snapshots is execution plumbing, not identity.
 *
 * The snapshot file is a single binary blob written atomically
 * (tmp + rename) with a trailing content checksum; a truncated,
 * corrupt, or mismatched file fails with a clean std::runtime_error
 * diagnostic, never a wrong resume.
 */

#ifndef CXL0_CHECK_CHECKPOINT_HH
#define CXL0_CHECK_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/engine.hh"

namespace cxl0::check
{

/**
 * Execution-plumbing knobs for out-of-core search, threaded beside
 * (never inside) the CheckRequest. Default-constructed = everything
 * off; the searches then behave exactly as before.
 */
struct OutOfCoreOptions
{
    /**
     * Directory for file-backed memory. Non-empty enables frontier
     * spilling (per-shard spill files under it); the driver
     * additionally installs a process-global SpillArena over it so
     * the interning tables' large segments become file-backed
     * (common/segmented.hh). Spill files are unlinked at creation —
     * any exit, SIGKILL included, reclaims the space.
     */
    std::string spillDir;

    /** Per-shard frontier byte budget before the cold half spills. */
    size_t frontierSpillBudgetBytes = 32u << 20;

    /** Per-shard hot visited-set byte budget before a sorted run is
     *  flushed to its spill file (VisitedSet in engine.hh). */
    size_t visitedSpillBudgetBytes = 16u << 20;

    /** Directory checkpoints are written into (one checkpoint.bin,
     *  atomically replaced). Empty = no checkpointing. */
    std::string checkpointDir;

    /** Admitted configurations between snapshots; 0 = off. */
    size_t checkpointEvery = 0;

    /** Directory to resume from (a prior run's checkpointDir).
     *  Empty = fresh search. */
    std::string resumeFrom;

    /**
     * Stop the search right after the Nth snapshot this run writes
     * (0 = never). In-process SIGKILL stand-in for the resume tests:
     * the truncated report is discarded and the run is resumed from
     * the snapshot instead.
     */
    size_t haltAfterCheckpoints = 0;

    bool anySpill() const { return !spillDir.empty(); }
    bool anyCheckpoint() const
    {
        return (checkpointEvery > 0 && !checkpointDir.empty()) ||
               !resumeFrom.empty();
    }
};

/** One worker/shard's share of a snapshot. */
struct WorkerSnapshot
{
    /** Every admitted config (sleep words ride inside entries). */
    std::vector<PackedConfig> visited;
    /** Emitted (register-file id, crashed mask) outcome keys. */
    std::vector<uint64_t> emitted;
    /** Partial outcomes: crashed mask + flat register block each. */
    std::vector<uint32_t> outcomeCrashed;
    std::vector<Value> outcomeRegs; //!< regsPerOutcome values each
    /** Schedule counters (the subset checkpointing preserves). */
    SearchStats stats;
    /** Queued frontier configs, cold-to-hot (spilled blocks first). */
    std::vector<PackedConfig> frontier;
    /** Undelivered inbox configs (admission still ahead of them). */
    std::vector<PackedConfig> inbox;
};

/** A whole search snapshot. */
struct CheckpointData
{
    /** Hash of (model config, program, request): a snapshot resumes
     *  only the exact search that wrote it. */
    uint64_t fingerprint = 0;
    uint64_t totalVisited = 0;
    uint64_t checkpointsWritten = 0;
    /** Values per serialized outcome (nthreads * nregs). */
    uint64_t regsPerOutcome = 0;
    /** Interned states, id order: hash + rawStride values each. */
    uint64_t stateStride = 0;
    std::vector<uint64_t> stateHashes;
    std::vector<Value> stateSpans;
    /** Interned register files, id order. */
    uint64_t regStride = 0;
    std::vector<uint64_t> regHashes;
    std::vector<Value> regSpans;
    std::vector<WorkerSnapshot> workers;
};

/** The snapshot file inside `dir`. */
std::string checkpointPath(const std::string &dir);

/**
 * Serialize `d` into dir/checkpoint.bin atomically (written to a
 * temp file, checksummed, renamed over the old snapshot). Returns
 * false (with a warning) on I/O failure — the search continues, the
 * previous snapshot survives.
 */
bool writeCheckpoint(const std::string &dir, const CheckpointData &d);

/**
 * Load dir/checkpoint.bin. Throws std::runtime_error with a precise
 * diagnostic when the file is missing, truncated, corrupt
 * (checksum), or structurally malformed.
 */
void readCheckpoint(const std::string &dir, CheckpointData &d);

} // namespace cxl0::check

#endif // CXL0_CHECK_CHECKPOINT_HH
