#include "check/explorer.hh"

#include <sstream>
#include <unordered_set>

#include "common/logging.hh"

namespace cxl0::check
{

using cxl0::Addr;
using model::Label;
using model::State;
using cxl0::Value;

ProgInstr
ProgInstr::load(Addr x, int dest_reg)
{
    ProgInstr i;
    i.kind = Kind::Load;
    i.addr = x;
    i.dest = dest_reg;
    return i;
}

ProgInstr
ProgInstr::store(Op flavour, Addr x, Operand v)
{
    CXL0_ASSERT(model::isStore(flavour), "store flavour required");
    ProgInstr i;
    i.kind = Kind::Store;
    i.op = flavour;
    i.addr = x;
    i.value = v;
    return i;
}

ProgInstr
ProgInstr::flush(Op flavour, Addr x)
{
    CXL0_ASSERT(flavour == Op::LFlush || flavour == Op::RFlush,
                "flush flavour required");
    ProgInstr i;
    i.kind = Kind::Flush;
    i.op = flavour;
    i.addr = x;
    return i;
}

ProgInstr
ProgInstr::gpf()
{
    ProgInstr i;
    i.kind = Kind::Gpf;
    i.op = Op::Gpf;
    return i;
}

ProgInstr
ProgInstr::cas(Op flavour, Addr x, Operand expect, Operand desired,
               int dest_reg)
{
    CXL0_ASSERT(model::isRmw(flavour), "RMW flavour required");
    ProgInstr i;
    i.kind = Kind::Cas;
    i.op = flavour;
    i.addr = x;
    i.expected = expect;
    i.value = desired;
    i.dest = dest_reg;
    return i;
}

ProgInstr
ProgInstr::faa(Op flavour, Addr x, Operand delta, int dest_reg)
{
    CXL0_ASSERT(model::isRmw(flavour), "RMW flavour required");
    ProgInstr i;
    i.kind = Kind::Faa;
    i.op = flavour;
    i.addr = x;
    i.value = delta;
    i.dest = dest_reg;
    return i;
}

bool
Outcome::operator<(const Outcome &other) const
{
    if (crashedThreads != other.crashedThreads)
        return crashedThreads < other.crashedThreads;
    return regs < other.regs;
}

bool
Outcome::operator==(const Outcome &other) const
{
    return crashedThreads == other.crashedThreads && regs == other.regs;
}

std::string
Outcome::describe() const
{
    std::ostringstream os;
    for (size_t t = 0; t < regs.size(); ++t) {
        os << "T" << t << ((crashedThreads >> t) & 1 ? "(crashed)" : "")
           << "[";
        for (size_t r = 0; r < regs[t].size(); ++r)
            os << (r ? "," : "") << regs[t][r];
        os << "] ";
    }
    return os.str();
}

namespace
{

/** Full search configuration: model state plus program state. */
struct Config
{
    State state;
    std::vector<size_t> pc;
    std::vector<std::vector<Value>> regs;
    std::vector<bool> alive;      // thread not killed by a crash
    std::vector<int> crashBudget; // remaining crashes per node

    bool operator==(const Config &other) const = default;
};

struct ConfigHash
{
    size_t
    operator()(const Config &c) const
    {
        uint64_t h = c.state.hash();
        auto mix = [&h](uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        };
        for (size_t p : c.pc)
            mix(p);
        for (const auto &file : c.regs)
            for (Value v : file)
                mix(static_cast<uint64_t>(v));
        for (bool a : c.alive)
            mix(a ? 1 : 2);
        for (int b : c.crashBudget)
            mix(static_cast<uint64_t>(b) + 7);
        return static_cast<size_t>(h);
    }
};

} // namespace

Explorer::Explorer(const Cxl0Model &model, Program program,
                   ExploreOptions options)
    : model_(model), program_(std::move(program)),
      options_(std::move(options))
{
    for (const ProgThread &t : program_.threads) {
        if (t.node >= model_.config().numNodes())
            CXL0_FATAL("thread placed on unknown machine ", t.node);
        for (const ProgInstr &i : t.code) {
            if (i.dest >= program_.numRegs)
                CXL0_FATAL("register index ", i.dest, " out of range");
        }
    }
}

std::set<Outcome>
Explorer::explore() const
{
    const size_t nthreads = program_.threads.size();
    Config init{model_.initialState(), {}, {}, {}, {}};
    init.pc.assign(nthreads, 0);
    init.regs.assign(nthreads,
                     std::vector<Value>(program_.numRegs, 0));
    init.alive.assign(nthreads, true);
    init.crashBudget.assign(model_.config().numNodes(),
                            options_.maxCrashesPerNode);
    if (!options_.crashableNodes.empty()) {
        for (NodeId n = 0; n < model_.config().numNodes(); ++n)
            init.crashBudget[n] = 0;
        for (NodeId n : options_.crashableNodes)
            init.crashBudget[n] = options_.maxCrashesPerNode;
    }

    std::set<Outcome> outcomes;
    std::unordered_set<Config, ConfigHash> visited;
    std::vector<Config> stack{init};
    visited.insert(init);

    auto done = [&](const Config &c) {
        for (size_t t = 0; t < nthreads; ++t) {
            if (c.alive[t] && c.pc[t] < program_.threads[t].code.size())
                return false;
        }
        return true;
    };

    auto push = [&](Config &&c) {
        if (visited.size() >= options_.maxConfigs)
            CXL0_FATAL("exploration exceeded ", options_.maxConfigs,
                       " configurations; shrink the program");
        if (visited.insert(c).second)
            stack.push_back(std::move(c));
    };

    while (!stack.empty()) {
        Config cur = std::move(stack.back());
        stack.pop_back();

        if (done(cur)) {
            Outcome out;
            out.regs = cur.regs;
            for (size_t t = 0; t < nthreads; ++t)
                if (!cur.alive[t])
                    out.crashedThreads |= 1u << t;
            outcomes.insert(std::move(out));
            // Tau and crash steps past completion cannot change the
            // registers, so this configuration is final.
            continue;
        }

        // Thread steps.
        for (size_t t = 0; t < nthreads; ++t) {
            if (!cur.alive[t] ||
                cur.pc[t] >= program_.threads[t].code.size()) {
                continue;
            }
            const ProgThread &thread = program_.threads[t];
            const ProgInstr &instr = thread.code[cur.pc[t]];
            const NodeId node = thread.node;
            const std::vector<Value> &regs = cur.regs[t];

            auto advance = [&](const State &next_state, int dest,
                               Value dest_value) {
                Config next = cur;
                next.state = next_state;
                next.pc[t] += 1;
                if (dest >= 0)
                    next.regs[t][dest] = dest_value;
                push(std::move(next));
            };

            switch (instr.kind) {
              case ProgInstr::Kind::Load: {
                auto v = model_.loadable(cur.state, node, instr.addr);
                if (!v)
                    break; // blocked (LWB-style); tau may unblock
                auto succ = model_.apply(
                    cur.state, Label::load(node, instr.addr, *v));
                CXL0_ASSERT(succ, "loadable value must be applicable");
                advance(*succ, instr.dest, *v);
                break;
              }
              case ProgInstr::Kind::Store: {
                Value v = instr.value.eval(regs);
                Label l{instr.op, node, instr.addr, v, 0};
                if (auto succ = model_.apply(cur.state, l))
                    advance(*succ, -1, 0);
                break;
              }
              case ProgInstr::Kind::Flush: {
                Label l{instr.op, node, instr.addr, 0, 0};
                if (auto succ = model_.apply(cur.state, l))
                    advance(*succ, -1, 0);
                break;
              }
              case ProgInstr::Kind::Gpf: {
                if (auto succ =
                        model_.apply(cur.state, Label::gpf(node)))
                    advance(*succ, -1, 0);
                break;
              }
              case ProgInstr::Kind::Cas: {
                auto v = model_.loadable(cur.state, node, instr.addr);
                if (!v)
                    break;
                Value expect = instr.expected.eval(regs);
                if (*v == expect) {
                    Label l{instr.op, node, instr.addr,
                            instr.value.eval(regs), expect};
                    auto succ = model_.apply(cur.state, l);
                    CXL0_ASSERT(succ, "enabled CAS must apply");
                    advance(*succ, instr.dest, 1);
                } else {
                    // Failed CAS behaves as a plain read (§3.3).
                    auto succ = model_.apply(
                        cur.state, Label::load(node, instr.addr, *v));
                    CXL0_ASSERT(succ, "failed CAS read must apply");
                    advance(*succ, instr.dest, 0);
                }
                break;
              }
              case ProgInstr::Kind::Faa: {
                auto v = model_.loadable(cur.state, node, instr.addr);
                if (!v)
                    break;
                Label l{instr.op, node, instr.addr,
                        *v + instr.value.eval(regs), *v};
                auto succ = model_.apply(cur.state, l);
                CXL0_ASSERT(succ, "enabled FAA must apply");
                advance(*succ, instr.dest, *v);
                break;
              }
            }
        }

        // Silent propagation steps.
        for (State &next_state : model_.tauSuccessors(cur.state)) {
            Config next = cur;
            next.state = std::move(next_state);
            push(std::move(next));
        }

        // Crash steps.
        for (NodeId n = 0; n < model_.config().numNodes(); ++n) {
            if (cur.crashBudget[n] <= 0)
                continue;
            Config next = cur;
            next.state = model_.applyCrash(cur.state, n);
            next.crashBudget[n] -= 1;
            for (size_t t = 0; t < nthreads; ++t)
                if (program_.threads[t].node == n)
                    next.alive[t] = false;
            push(std::move(next));
        }
    }
    return outcomes;
}

std::vector<Outcome>
Explorer::outcomesWhere(const std::set<Outcome> &outcomes,
                        bool (*pred)(const Outcome &)) const
{
    std::vector<Outcome> out;
    for (const Outcome &o : outcomes)
        if (pred(o))
            out.push_back(o);
    return out;
}

} // namespace cxl0::check
