#include "check/explorer.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include <unistd.h>

#include "common/hashmix.hh"
#include "common/logging.hh"
#include "model/state_table.hh"
#include "obs/telemetry.hh"

namespace cxl0::check
{

using cxl0::Addr;
using cxl0::Value;
using model::Label;
using model::State;
using model::StateId;
using model::TauMove;
using model::ValueSpanTable;

ProgInstr
ProgInstr::load(Addr x, int dest_reg)
{
    ProgInstr i;
    i.kind = Kind::Load;
    i.addr = x;
    i.dest = dest_reg;
    return i;
}

ProgInstr
ProgInstr::store(Op flavour, Addr x, Operand v)
{
    CXL0_ASSERT(model::isStore(flavour), "store flavour required");
    ProgInstr i;
    i.kind = Kind::Store;
    i.op = flavour;
    i.addr = x;
    i.value = v;
    return i;
}

ProgInstr
ProgInstr::flush(Op flavour, Addr x)
{
    CXL0_ASSERT(flavour == Op::LFlush || flavour == Op::RFlush,
                "flush flavour required");
    ProgInstr i;
    i.kind = Kind::Flush;
    i.op = flavour;
    i.addr = x;
    return i;
}

ProgInstr
ProgInstr::gpf()
{
    ProgInstr i;
    i.kind = Kind::Gpf;
    i.op = Op::Gpf;
    return i;
}

ProgInstr
ProgInstr::cas(Op flavour, Addr x, Operand expect, Operand desired,
               int dest_reg)
{
    CXL0_ASSERT(model::isRmw(flavour), "RMW flavour required");
    ProgInstr i;
    i.kind = Kind::Cas;
    i.op = flavour;
    i.addr = x;
    i.expected = expect;
    i.value = desired;
    i.dest = dest_reg;
    return i;
}

ProgInstr
ProgInstr::faa(Op flavour, Addr x, Operand delta, int dest_reg)
{
    CXL0_ASSERT(model::isRmw(flavour), "RMW flavour required");
    ProgInstr i;
    i.kind = Kind::Faa;
    i.op = flavour;
    i.addr = x;
    i.value = delta;
    i.dest = dest_reg;
    return i;
}

namespace
{

/** What applying one program instruction did. */
struct StepEffect
{
    bool enabled = false; //!< false: blocked/disabled, state untouched
    int destReg = -1;     //!< register to write, -1 for none
    Value destVal = 0;
};

/**
 * Apply one program instruction in place. `tregs` is the issuing
 * thread's register file (read-only). The single source of truth for
 * instruction semantics: both the packed search and the reference
 * search step through here.
 */
StepEffect
stepInstrInPlace(const Cxl0Model &model, const ProgInstr &instr,
                 NodeId node, const Value *tregs, State &state)
{
    StepEffect eff;
    switch (instr.kind) {
      case ProgInstr::Kind::Load: {
        auto v = model.loadable(state, node, instr.addr);
        if (!v)
            return eff; // blocked (LWB-style); tau may unblock
        bool ok = model.applyInPlace(
            state, Label::load(node, instr.addr, *v));
        CXL0_ASSERT(ok, "loadable value must be applicable");
        eff.enabled = true;
        eff.destReg = instr.dest;
        eff.destVal = *v;
        return eff;
      }
      case ProgInstr::Kind::Store: {
        Label l{instr.op, node, instr.addr, instr.value.eval(tregs), 0};
        eff.enabled = model.applyInPlace(state, l);
        return eff;
      }
      case ProgInstr::Kind::Flush: {
        Label l{instr.op, node, instr.addr, 0, 0};
        eff.enabled = model.applyInPlace(state, l);
        return eff;
      }
      case ProgInstr::Kind::Gpf: {
        eff.enabled = model.applyInPlace(state, Label::gpf(node));
        return eff;
      }
      case ProgInstr::Kind::Cas: {
        auto v = model.loadable(state, node, instr.addr);
        if (!v)
            return eff;
        Value expect = instr.expected.eval(tregs);
        if (*v == expect) {
            Label l{instr.op, node, instr.addr,
                    instr.value.eval(tregs), expect};
            bool ok = model.applyInPlace(state, l);
            CXL0_ASSERT(ok, "enabled CAS must apply");
            eff.destVal = 1;
        } else {
            // Failed CAS behaves as a plain read (§3.3).
            bool ok = model.applyInPlace(
                state, Label::load(node, instr.addr, *v));
            CXL0_ASSERT(ok, "failed CAS read must apply");
            eff.destVal = 0;
        }
        eff.enabled = true;
        eff.destReg = instr.dest;
        return eff;
      }
      case ProgInstr::Kind::Faa: {
        auto v = model.loadable(state, node, instr.addr);
        if (!v)
            return eff;
        Label l{instr.op, node, instr.addr,
                *v + instr.value.eval(tregs), *v};
        bool ok = model.applyInPlace(state, l);
        CXL0_ASSERT(ok, "enabled FAA must apply");
        eff.enabled = true;
        eff.destReg = instr.dest;
        eff.destVal = *v;
        return eff;
      }
    }
    return eff;
}

/**
 * Content fingerprint of (model config, program, request). A
 * checkpoint embeds it so a snapshot can only resume the exact
 * search that wrote it — every field that shapes the reduced search
 * graph or the packed-config layout is mixed in.
 */
uint64_t
searchFingerprint(const Cxl0Model &model, const Program &program,
                  const CheckRequest &req)
{
    uint64_t h = 0x10c0ffee;
    auto mix = [&h](uint64_t v) {
        h = mixBits(h ^ (v + 0x9e3779b97f4a7c15ULL));
    };
    mix(static_cast<uint64_t>(model.variant()));
    mix(model.config().numNodes());
    mix(model.config().numAddrs());
    for (Addr x = 0; x < model.config().numAddrs(); ++x)
        mix(model.config().ownerOf(x));
    for (NodeId n = 0; n < model.config().numNodes(); ++n)
        mix(model.config().isPersistent(n) ? 2 : 1);
    mix(program.threads.size());
    mix(static_cast<uint64_t>(program.numRegs));
    for (const ProgThread &t : program.threads) {
        mix(t.node);
        mix(t.code.size());
        for (const ProgInstr &i : t.code) {
            mix(static_cast<uint64_t>(i.kind));
            mix(static_cast<uint64_t>(i.op));
            mix(i.addr);
            mix(i.value.isReg ? 1 : 0);
            mix(static_cast<uint64_t>(i.value.imm));
            mix(static_cast<uint64_t>(i.value.reg));
            mix(i.expected.isReg ? 1 : 0);
            mix(static_cast<uint64_t>(i.expected.imm));
            mix(static_cast<uint64_t>(i.expected.reg));
            mix(static_cast<uint64_t>(i.dest));
        }
    }
    mix(req.maxConfigs);
    mix(req.timeBudgetMs);
    mix(static_cast<uint64_t>(req.maxCrashesPerNode));
    mix(req.crashableNodes.size());
    for (NodeId n : req.crashableNodes)
        mix(n);
    mix(static_cast<uint64_t>(req.reduction));
    mix(static_cast<uint64_t>(req.frontier));
    mix(req.numThreads);
    return h;
}

} // namespace

Explorer::Explorer(const Cxl0Model &model, Program program,
                   CheckRequest request)
    : model_(model), program_(std::move(program)),
      request_(std::move(request))
{
    if (program_.threads.size() > 32)
        CXL0_FATAL("explorer supports at most 32 threads, got ",
                   program_.threads.size());
    for (const ProgThread &t : program_.threads) {
        if (t.node >= model_.config().numNodes())
            CXL0_FATAL("thread placed on unknown machine ", t.node);
        for (const ProgInstr &i : t.code) {
            if (i.dest >= program_.numRegs)
                CXL0_FATAL("register index ", i.dest, " out of range");
        }
    }
}

namespace
{

/** Per-worker state of the sharded explorer search. */
struct ExplorerWorker
{
    ExplorerWorker(ModelContext &ctx, const State &init,
                   size_t reg_stride)
        : eng(ctx), scratch(init), work(init), symBuf(init),
          curRegs(reg_stride, 0), regBuf(reg_stride, 0)
    {
    }

    ShardEngine eng;
    VisitedSet visited;
    /** (register-file id, crashed mask) pairs already emitted as
     *  outcomes; lets done configurations skip materialization. */
    std::unordered_set<uint64_t> emitted;
    CheckReport partial;
    State scratch; //!< current config's state
    State work;    //!< successor under mutation
    State symBuf;  //!< state canonicalization buffer
    /** Copy of the current config's tau successors: expanding them
     *  calls back into the engine (state quotients intern rewritten
     *  states), which can rehash the memo the engine's reference
     *  points into. */
    std::vector<std::pair<Addr, StateId>> tauBuf;
    std::vector<Value> curRegs;
    std::vector<Value> regBuf;
};

} // namespace

CheckReport
Explorer::check(ModelContext *shared,
                const OutOfCoreOptions *oocOpt) const
{
    if (shared && &shared->model() != &model_)
        CXL0_FATAL("shared ModelContext built over a different model");
    static const OutOfCoreOptions kNoOoc{};
    const OutOfCoreOptions &ooc = oocOpt != nullptr ? *oocOpt : kNoOoc;
    auto t_start = std::chrono::steady_clock::now();
    // Telemetry is metadata, never identity: the hooks below record
    // what the search does but never feed anything back into it.
    obs::Telemetry *const tel = obs::current();
    const obs::ScopedSpan phaseSpan(obs::threadRing(),
                                    "search:explore");
    const size_t nthreads = program_.threads.size();
    const size_t nnodes = model_.config().numNodes();
    const size_t naddrs = model_.config().numAddrs();
    const size_t nregs = static_cast<size_t>(
        std::max(program_.numRegs, 0));
    const size_t nworkers = std::max<size_t>(request_.numThreads, 1);

    // ---- bitfield layout of the packed configuration ------------------
    size_t max_len = 0;
    for (const ProgThread &t : program_.threads)
        max_len = std::max(max_len, t.code.size());
    const BitfieldWord pcw(std::bit_width(max_len));
    if (!pcw.fits(nthreads))
        CXL0_FATAL("program too large for the packed explorer: ",
                   nthreads, " threads x ", pcw.bits(),
                   " pc bits > 64");
    const int max_crash = std::max(request_.maxCrashesPerNode, 0);
    const BitfieldWord budgetw(
        std::bit_width(static_cast<unsigned>(max_crash)));
    if (!budgetw.fits(nnodes))
        CXL0_FATAL("crash budget too large for the packed explorer: ",
                   nnodes, " nodes x ", budgetw.bits(), " bits > 64");

    auto pcOf = [&](uint64_t word, size_t t) -> size_t {
        return static_cast<size_t>(pcw.get(word, t));
    };

    // ---- partial-order reduction: per-thread suffix footprints --------
    // addr_mask[t][pc] = addresses instructions pc.. of thread t can
    // touch; gpf_after[t][pc] = whether a GPF is still ahead. Both
    // reductions consume them: a tau move on an address outside every
    // live thread's future footprint (with no pending GPF) cannot
    // influence any outcome and is skipped, and the ample-set check
    // uses the same masks to prove a thread step commutes with every
    // other thread's remaining code. See src/check/README.md for the
    // soundness arguments.
    const Reduction red =
        naddrs <= 64 ? request_.reduction : Reduction::None;
    const bool can_reduce = red != Reduction::None;
    const bool use_ample = red >= Reduction::Ample;
    const bool use_crash_ample = red >= Reduction::CrashAmple;
    // Sleep words carry one bit per thread and per machine in a
    // 16+16 split of PackedConfig::sleep; wider programs fall back
    // to the crash-ample stack (a pure function of the program
    // shape, so still schedule-invariant).
    const bool use_sleep =
        red >= Reduction::Sleep && nthreads <= 16 && nnodes <= 16;
    // Loads never mutate the state under LWB or when remote-cache
    // serving is off (applyLoadInPlace); only then do two loads of
    // the *same* address commute (LOAD-from-C fills the issuer's
    // cache, which the other load can observe).
    const bool loads_neutral =
        model_.variant() == model::ModelVariant::Lwb ||
        !model_.restrictions().serveLoadFromRemoteCache;
    std::vector<std::vector<uint64_t>> addr_mask(nthreads);
    std::vector<std::vector<uint8_t>> gpf_after(nthreads);
    if (can_reduce) {
        for (size_t t = 0; t < nthreads; ++t) {
            const auto &code = program_.threads[t].code;
            addr_mask[t].assign(code.size() + 1, 0);
            gpf_after[t].assign(code.size() + 1, 0);
            for (size_t pc = code.size(); pc-- > 0;) {
                addr_mask[t][pc] = addr_mask[t][pc + 1];
                gpf_after[t][pc] = gpf_after[t][pc + 1];
                if (code[pc].kind == ProgInstr::Kind::Gpf)
                    gpf_after[t][pc] = 1;
                else
                    addr_mask[t][pc] |= 1ull << code[pc].addr;
            }
        }
    }
    // owned_mask[n]: addresses machine n owns (the crash-ample check
    // asks whether a crash's PSN poison / volatile memory reset could
    // still be observed).
    std::vector<uint64_t> owned_mask(nnodes, 0);
    if (can_reduce) {
        for (Addr x = 0; x < naddrs; ++x)
            owned_mask[model_.config().ownerOf(x)] |= 1ull << x;
    }

    // ---- crash-budget symmetry --------------------------------------
    // Machines that host no thread and own no address are fully
    // interchangeable: outcomes name threads and per-thread crash
    // bits only, so renaming two such machines permutes nothing an
    // outcome (or any enabled step) can observe. Canonicalizing their
    // (cache row, remaining budget, crash-sleep bit) triples at
    // interning time merges entire symmetric subtrees.
    std::optional<model::MachineSymmetry> sym;
    bool use_symmetry = false;
    if (red >= Reduction::Full && nnodes <= 64) {
        std::vector<bool> hosts(nnodes, false);
        for (const ProgThread &t : program_.threads)
            hosts[t.node] = true;
        sym.emplace(model_.config(), hosts);
        use_symmetry = sym->any();
    }

    // ---- shared context, register interning, sharded frontier ---------
    CheckReport res;
    std::optional<ModelContext> own_ctx;
    if (!shared)
        own_ctx.emplace(model_);
    ModelContext &ctx = shared ? *shared : *own_ctx;
    const size_t reg_stride = std::max<size_t>(nthreads * nregs, 1);
    ValueSpanTable reg_files(reg_stride);

    const uint32_t all_alive =
        nthreads >= 32 ? ~0u : (1u << nthreads) - 1;
    // node_threads[n]: bitmask of the threads running on machine n
    // (the ample check asks whether a pending crash could still mark
    // a thread crashed).
    std::vector<uint32_t> node_threads(nnodes, 0);
    for (size_t t = 0; t < nthreads; ++t)
        node_threads[program_.threads[t].node] |= 1u << t;
    uint64_t crash0 = 0;
    {
        std::vector<int> budget(nnodes, max_crash);
        if (!request_.crashableNodes.empty()) {
            budget.assign(nnodes, 0);
            for (NodeId n : request_.crashableNodes)
                budget[n] = max_crash;
        }
        for (size_t n = 0; n < nnodes; ++n)
            crash0 = budgetw.set(crash0, n, budget[n]);
    }

    // One worker per shard, sharing the context and register table.
    std::deque<ExplorerWorker> workers;
    const State init_state = model_.initialState();
    for (size_t w = 0; w < nworkers; ++w)
        workers.emplace_back(ctx, init_state, reg_stride);

    ShardedFrontier sf(nworkers, request_.frontier);
    std::atomic<size_t> total_visited{0};
    const Deadline deadline(request_.timeBudgetMs);

    // ---- out-of-core: per-shard frontier + visited spill files --------
    std::vector<std::unique_ptr<SpillFile>> spill_files;
    std::vector<std::unique_ptr<SpillFile>> visited_files;
    if (ooc.anySpill() && ensureDir(ooc.spillDir)) {
        for (size_t w = 0; w < nworkers; ++w) {
            auto file = std::make_unique<SpillFile>();
            std::string path = ooc.spillDir + "/frontier-" +
                               std::to_string(::getpid()) + "-" +
                               std::to_string(w) + ".spill";
            // Unlinked at creation: any exit (SIGKILL included)
            // reclaims the space. The checkpoint serializes frontier
            // contents itself, so spill files never need to persist.
            if (file->open(path, /*unlinkAfter=*/true))
                sf.configureSpill(w, file.get(),
                                  ooc.frontierSpillBudgetBytes);
            spill_files.push_back(std::move(file));

            auto vfile = std::make_unique<SpillFile>();
            std::string vpath = ooc.spillDir + "/visited-" +
                                std::to_string(::getpid()) + "-" +
                                std::to_string(w) + ".spill";
            if (vfile->open(vpath, /*unlinkAfter=*/true))
                workers[w].visited.configureSpill(
                    vfile.get(), ooc.visitedSpillBudgetBytes);
            visited_files.push_back(std::move(vfile));
        }
    }

    // ---- checkpoint/resume --------------------------------------------
    const uint64_t fingerprint =
        searchFingerprint(model_, program_, request_);
    const bool do_ckpt =
        ooc.checkpointEvery > 0 && !ooc.checkpointDir.empty();
    std::atomic<uint64_t> ckpt_count{0};
    std::atomic<uint64_t> next_ckpt_at{static_cast<uint64_t>(-1)};
    std::atomic<bool> ckpt_armed{false};
    std::atomic<bool> halted_after_ckpt{false};

    // With an installed arena, evict cold file-backed pages on a
    // visit cadence, not only at checkpoint barriers: the interning
    // tables and visited sets grow monotonically, and a spilling run
    // without checkpoints would otherwise keep every page it ever
    // touched resident. shed() is safe concurrent with readers and
    // writers (dropped pages refault from the page cache), so no
    // rendezvous is needed — one worker claims each crossing via CAS.
    SpillArena *const shed_arena =
        ooc.anySpill() ? SpillArena::installed() : nullptr;
    constexpr uint64_t kShedInterval = 8192;
    std::atomic<uint64_t> next_shed_at{kShedInterval};

    bool resumed = false;
    if (!ooc.resumeFrom.empty()) {
        CheckpointData snap;
        readCheckpoint(ooc.resumeFrom, snap); // throws on a bad file
        if (snap.fingerprint != fingerprint)
            throw std::runtime_error(
                "checkpoint was written by a different search "
                "(model/program/request mismatch)");
        if (snap.workers.size() != nworkers)
            throw std::runtime_error(
                "checkpoint worker-count mismatch");
        if (ctx.states().size() != 0 || reg_files.size() != 0)
            throw std::runtime_error(
                "resume requires a fresh model context (not a warm "
                "serve pool)");
        if (snap.stateStride != ctx.states().rawStride() ||
            snap.regStride != reg_stride ||
            snap.regsPerOutcome != nthreads * nregs)
            throw std::runtime_error(
                "checkpoint table-shape mismatch");
        // Tables restore by re-interning in id order: dense ids come
        // from one counter, so a fresh table reassigns exactly the
        // same ids and every PackedConfig in the snapshot stays
        // meaningful.
        for (size_t i = 0; i < snap.stateHashes.size(); ++i) {
            StateId got = ctx.states().internRaw(
                snap.stateSpans.data() + i * snap.stateStride,
                snap.stateHashes[i]);
            CXL0_ASSERT(got == i, "state ids must restore densely");
        }
        for (size_t i = 0; i < snap.regHashes.size(); ++i) {
            uint32_t got = reg_files.intern(
                snap.regSpans.data() + i * snap.regStride,
                snap.regHashes[i]);
            CXL0_ASSERT(got == i,
                        "register ids must restore densely");
        }
        total_visited.store(snap.totalVisited,
                            std::memory_order_relaxed);
        ckpt_count.store(snap.checkpointsWritten,
                         std::memory_order_relaxed);
        const size_t rpo = static_cast<size_t>(snap.regsPerOutcome);
        for (size_t w = 0; w < nworkers; ++w) {
            ExplorerWorker &me = workers[w];
            const WorkerSnapshot &ws = snap.workers[w];
            for (const PackedConfig &c : ws.visited)
                me.visited.insert(c);
            me.emitted.insert(ws.emitted.begin(), ws.emitted.end());
            for (size_t i = 0; i < ws.outcomeCrashed.size(); ++i) {
                Outcome out;
                out.crashedThreads = ws.outcomeCrashed[i];
                out.regs.resize(nthreads);
                for (size_t t = 0; t < nthreads; ++t)
                    out.regs[t].assign(
                        ws.outcomeRegs.begin() +
                            static_cast<long>(i * rpo + t * nregs),
                        ws.outcomeRegs.begin() +
                            static_cast<long>(i * rpo +
                                              (t + 1) * nregs));
                me.partial.outcomes.insert(std::move(out));
            }
            me.partial.stats = ws.stats;
            // Frontiers re-push in the serialized cold-to-hot order
            // (a DFS stack rebuilds identically; expansion order is
            // immaterial to results either way). Inbox configs
            // re-enter their owner's inbox and meet admission — the
            // restored visited set — on the next drain.
            for (const PackedConfig &c : ws.frontier)
                sf.pushLocal(w, c);
            for (const PackedConfig &c : ws.inbox)
                sf.send(w, c);
        }
        resumed = true;
    }

    if (!resumed) {
        PackedConfig init;
        init.state = workers[0].eng.internState(init_state);
        init.regs = reg_files.intern(
            workers[0].curRegs.data(),
            model::hashValueSpan(workers[0].curRegs.data(),
                                 reg_stride));
        init.alive = all_alive;
        init.crash = crash0;
        size_t owner = sf.ownerOf(hashPacked(init));
        workers[owner].visited.insert(init);
        total_visited.store(1, std::memory_order_relaxed);
        sf.pushLocal(owner, init);
    }

    // ---- checkpoint writer (leader at a quiescent pause) --------------
    if (do_ckpt) {
        next_ckpt_at.store(
            total_visited.load(std::memory_order_relaxed) +
                ooc.checkpointEvery,
            std::memory_order_relaxed);
        sf.configurePause(nworkers, [&] {
            // Runs on the last worker to arrive at the rendezvous:
            // every other worker is parked between configurations,
            // so the tables, visited sets, frontiers, and inboxes
            // together are the complete, consistent search state.
            CheckpointData snap;
            snap.fingerprint = fingerprint;
            snap.totalVisited =
                total_visited.load(std::memory_order_relaxed);
            snap.checkpointsWritten =
                ckpt_count.load(std::memory_order_relaxed) + 1;
            snap.regsPerOutcome = nthreads * nregs;
            snap.stateStride = ctx.states().rawStride();
            const size_t nstates = ctx.states().size();
            snap.stateHashes.reserve(nstates);
            snap.stateSpans.reserve(nstates * snap.stateStride);
            for (size_t i = 0; i < nstates; ++i) {
                snap.stateHashes.push_back(
                    ctx.states().hashOf(static_cast<StateId>(i)));
                const Value *s =
                    ctx.states().rawSpan(static_cast<StateId>(i));
                snap.stateSpans.insert(snap.stateSpans.end(), s,
                                       s + snap.stateStride);
            }
            snap.regStride = reg_stride;
            const size_t nrf = reg_files.size();
            snap.regHashes.reserve(nrf);
            snap.regSpans.reserve(nrf * reg_stride);
            for (size_t i = 0; i < nrf; ++i) {
                snap.regHashes.push_back(
                    reg_files.hashOf(static_cast<uint32_t>(i)));
                const Value *s =
                    reg_files.at(static_cast<uint32_t>(i));
                snap.regSpans.insert(snap.regSpans.end(), s,
                                     s + reg_stride);
            }
            snap.workers.resize(nworkers);
            for (size_t w = 0; w < nworkers; ++w) {
                WorkerSnapshot &ws = snap.workers[w];
                ExplorerWorker &wk = workers[w];
                ws.visited.reserve(wk.visited.size());
                wk.visited.forEach([&](const PackedConfig &c) {
                    ws.visited.push_back(c);
                });
                ws.emitted.assign(wk.emitted.begin(),
                                  wk.emitted.end());
                for (const Outcome &o : wk.partial.outcomes) {
                    ws.outcomeCrashed.push_back(o.crashedThreads);
                    for (const auto &r : o.regs)
                        ws.outcomeRegs.insert(ws.outcomeRegs.end(),
                                              r.begin(), r.end());
                }
                // Worker stats fold in the frontier-side counters a
                // worker normally reads back only after the drain.
                ws.stats = wk.partial.stats;
                auto [sp, sb] = sf.spillCounters(w);
                ws.stats.spilledConfigs +=
                    sp + wk.visited.spilledEntries();
                ws.stats.spillBytes +=
                    sb + wk.visited.spilledBytes();
                ws.stats.inboxBatches += sf.inboxBatchCount(w);
                auto [sa, ss] = sf.stealCounters(w);
                ws.stats.stealsAttempted += sa;
                ws.stats.stealsSucceeded += ss;
                sf.forEachQueued(w, [&](const PackedConfig &c) {
                    ws.frontier.push_back(c);
                });
                sf.forEachInbox(w, [&](const PackedConfig &c) {
                    ws.inbox.push_back(c);
                });
            }
            if (writeCheckpoint(ooc.checkpointDir, snap))
                ckpt_count.fetch_add(1, std::memory_order_relaxed);
            if (SpillArena *a = SpillArena::installed())
                a->shed(); // quiescent: evict cold table pages
            next_ckpt_at.store(snap.totalVisited +
                                   ooc.checkpointEvery,
                               std::memory_order_relaxed);
            ckpt_armed.store(false, std::memory_order_release);
            if (ooc.haltAfterCheckpoints > 0 &&
                ckpt_count.load(std::memory_order_relaxed) >=
                    ooc.haltAfterCheckpoints) {
                // In-process SIGKILL stand-in for the resume tests:
                // abandon the run right after the snapshot.
                halted_after_ckpt.store(true,
                                        std::memory_order_relaxed);
                sf.stopAll();
            }
        });
    }

    auto run_worker = [&](size_t w) {
        ExplorerWorker &me = workers[w];
        State &scratch = me.scratch;
        State &work = me.work;
        std::vector<Value> &cur_regs = me.curRegs;
        std::vector<Value> &reg_buf = me.regBuf;

        obs::TraceRing *const ring =
            tel != nullptr
                ? tel->ring("explore-shard-" + std::to_string(w))
                : nullptr;
        if (ring != nullptr)
            sf.setTraceRing(w, ring);
        obs::ShardPublisher pub(tel, w);
        const obs::ScopedSpan workerSpan(ring, "expand");
        auto publishSample = [&] {
            obs::SearchSample s;
            s.configsVisited = me.partial.stats.configsVisited;
            s.configsInterned = me.visited.size();
            s.tauSkipped = me.partial.stats.tauMovesSkipped;
            s.ampleSkipped = me.partial.stats.ampleSkipped;
            s.crashAmpleSkipped =
                me.partial.stats.crashAmpleSkipped;
            s.sleepSkipped = me.partial.stats.sleepSetSkipped;
            s.symmetryMerged = me.partial.stats.symmetryMerged;
            auto [attempted, succeeded] = sf.stealCounters(w);
            s.stealsAttempted = attempted;
            s.stealsSucceeded = succeeded;
            auto [spilled, spill_bytes] = sf.spillCounters(w);
            s.spilledConfigs =
                spilled + me.visited.spilledEntries();
            s.spillBytes = spill_bytes + me.visited.spilledBytes();
            s.frontierDepth = sf.depth(w);
            s.pendingDepth = sf.pending();
            s.checkpointCount =
                ckpt_count.load(std::memory_order_relaxed);
            pub.publish(s);
        };

        PackedConfig cur;
        // Per-popped-configuration reduction context, refreshed at
        // the top of the expansion loop: the union of live threads'
        // future address footprints / pending-GPF flag, and the
        // decoded sleep word (low 16 bits sleep threads, high 16
        // sleep crash-machines).
        uint64_t live_mask = 0;
        bool future_gpf = false;
        uint32_t ts = 0, cs = 0;

        // Owner-side admission: dedup against this shard's visited
        // set under the shared config budget. With one worker this is
        // exactly the sequential push rule.
        auto admit = [&](PackedConfig &c) {
            if (total_visited.load(std::memory_order_relaxed) >=
                request_.maxConfigs) {
                // Only a genuinely new configuration is being
                // dropped; a duplicate would have been ignored
                // anyway, so a search that exactly fills the budget
                // still reports complete. (A lost sleep-word merge
                // is fine here: the search is already truncated.)
                if (!me.visited.contains(c))
                    me.partial.truncated = true;
                return false;
            }
            // Converging paths intersect sleep words (VisitedSet
            // does the merge, in place for hot entries and via
            // write-back for cold ones): a revisit whose word
            // covers the stored one adds nothing; a strictly
            // smaller intersection wakes steps the stored expansion
            // suppressed, so the configuration re-enters the
            // frontier with the merged word. Sleep words only
            // shrink, so this converges, and the fixpoint is
            // independent of arrival order.
            switch (me.visited.admit(c)) {
            case VisitedSet::Admit::Inserted:
                total_visited.fetch_add(1,
                                        std::memory_order_relaxed);
                return true;
            case VisitedSet::Admit::Readmitted:
                return true;
            case VisitedSet::Admit::Duplicate:
            default:
                return false;
            }
        };
        // Crash-budget symmetry: rewrite the successor into its
        // orbit-canonical representative *before* hashing, so every
        // worker and steal schedule agrees on the stored form. The
        // permutation moves whole (cache row, budget, crash-sleep)
        // triples between interchangeable machines, so the canonical
        // configuration is reachable by the renamed trace and has
        // the same outcome set.
        auto canon = [&](PackedConfig &c) {
            if (!use_symmetry)
                return;
            int buds[64];
            uint8_t aux[64];
            for (size_t n = 0; n < nnodes; ++n) {
                buds[n] =
                    static_cast<int>(budgetw.get(c.crash, n));
                aux[n] = n < 16 ? static_cast<uint8_t>(
                                      c.sleep >> (16 + n) & 1)
                                : 0;
            }
            me.eng.materializeState(c.state, me.symBuf);
            if (!sym->canonicalize(me.symBuf, buds, aux))
                return;
            c.state = me.eng.internState(me.symBuf);
            uint64_t crash_w = 0;
            for (size_t n = 0; n < nnodes; ++n)
                crash_w = budgetw.set(
                    crash_w, n, static_cast<uint64_t>(buds[n]));
            c.crash = crash_w;
            if (c.sleep >> 16) {
                uint32_t csw = 0;
                for (size_t n = 0; n < nnodes && n < 16; ++n)
                    if (aux[n])
                        csw |= 1u << n;
                c.sleep = (c.sleep & 0xffffu) | (csw << 16);
            }
            ++me.partial.stats.symmetryMerged;
        };
        // Dead-address quotient: an address outside every live
        // thread's remaining footprint is never loaded, stored,
        // flushed, or RMW'd again — and outcomes read registers and
        // crashed bits only — so its cached copies and owner-memory
        // value are unobservable. Canonicalize it to its post-drain
        // representative: no cached copies, owner memory back at the
        // initial value. Every real configuration reaches that form
        // by running the always-enabled drain taus, which touch only
        // dead state and commute with every live step, so the
        // quotient is outcome-preserving (a GPF only becomes enabled
        // *earlier*, exactly as after those drains). A parent is
        // canonical for its own live mask and its steps touch live
        // addresses only, so successors need rewriting only for
        // addresses that just died (a pc advancing past an address's
        // last use, or a crash dropping a thread's footprint).
        auto deadCanon = [&](PackedConfig &c) {
            if (!use_crash_ample)
                return;
            uint64_t nlive = 0;
            for (size_t t = 0; t < nthreads; ++t)
                if (c.alive >> t & 1)
                    nlive |= addr_mask[t][pcOf(c.pc, t)];
            const uint64_t newly_dead = live_mask & ~nlive;
            if (!newly_dead)
                return;
            me.eng.materializeState(c.state, me.symBuf);
            bool changed = false;
            for (uint64_t m = newly_dead; m; m &= m - 1) {
                Addr x =
                    static_cast<Addr>(std::countr_zero(m));
                for (size_t n = 0; n < nnodes; ++n) {
                    NodeId nn = static_cast<NodeId>(n);
                    if (me.symBuf.cacheValid(nn, x)) {
                        me.symBuf.setCache(nn, x, kBottom);
                        changed = true;
                    }
                }
                if (me.symBuf.memory(x) != kInitValue) {
                    me.symBuf.setMemory(x, kInitValue);
                    changed = true;
                }
            }
            if (changed)
                c.state = me.eng.internState(me.symBuf);
        };
        auto push = [&](PackedConfig c) {
            deadCanon(c);
            canon(c);
            size_t owner = sf.ownerOf(hashPacked(c));
            if (owner == w) {
                if (admit(c))
                    sf.pushLocal(w, c);
            } else {
                // Steal-aware batching: blocks ride to the owner
                // under one lock acquisition; pop() flushes before
                // sleeping or pausing, so nothing can hide here.
                sf.sendBuffered(w, owner, c);
            }
        };

        auto instrOf = [&](size_t u) -> const ProgInstr & {
            return program_.threads[u].code[pcOf(cur.pc, u)];
        };
        // Two thread steps are independent when neither is a GPF and
        // they touch different addresses: they then read/write
        // disjoint {cache column, memory cell} families, so they
        // commute, preserve each other's enabledness, and bind the
        // same register values in either order. Same-address loads
        // also commute when loads are state-neutral.
        auto indepII = [&](const ProgInstr &a, const ProgInstr &b) {
            if (a.kind == ProgInstr::Kind::Gpf ||
                b.kind == ProgInstr::Kind::Gpf)
                return false;
            if (a.addr != b.addr)
                return true;
            return loads_neutral &&
                   a.kind == ProgInstr::Kind::Load &&
                   b.kind == ProgInstr::Kind::Load;
        };
        // crash(n) is independent of thread u's pending instruction
        // (running on `node`, evaluated at the *current* state) when
        // the crash cannot kill u, cannot wipe or poison a line the
        // step may read or fill, and a volatile/PSN owner reset
        // cannot touch the step's cell.
        auto indepCI = [&](size_t n, NodeId node,
                           const ProgInstr &a) {
            NodeId nn = static_cast<NodeId>(n);
            if (node == nn || a.kind == ProgInstr::Kind::Gpf)
                return false;
            if (scratch.cacheValid(nn, a.addr))
                return false;
            if (model_.config().ownerOf(a.addr) == nn) {
                if (!model_.config().isPersistent(nn) ||
                    model_.variant() == model::ModelVariant::Psn ||
                    a.op == Op::RStore || a.op == Op::RRmw)
                    return false;
            }
            return true;
        };
        // Sleep propagation: a successor inherits every sleeper that
        // is independent of the step just taken (dependent sleepers
        // wake so the covered reordering stays explored).
        auto sleepAfterThread = [&](uint32_t ts0, uint32_t cs0,
                                    size_t t,
                                    const ProgInstr &a) -> uint32_t {
            uint32_t nts = 0, ncs = 0;
            const NodeId node = program_.threads[t].node;
            for (uint32_t m = ts0; m; m &= m - 1) {
                size_t u = static_cast<size_t>(std::countr_zero(m));
                if (u != t && indepII(instrOf(u), a))
                    nts |= 1u << u;
            }
            for (uint32_t m = cs0; m; m &= m - 1) {
                size_t n = static_cast<size_t>(std::countr_zero(m));
                if (indepCI(n, node, a))
                    ncs |= 1u << n;
            }
            return nts | (ncs << 16);
        };
        // A tau move on x is dependent with thread steps on x (and
        // any GPF), and with crash(n) when n owns x or holds x in
        // its cache (the move may drain into / out of C_n or M(x)).
        auto sleepAfterTau = [&](uint32_t ts0, uint32_t cs0,
                                 Addr x) -> uint32_t {
            uint32_t nts = 0, ncs = 0;
            for (uint32_t m = ts0; m; m &= m - 1) {
                size_t u = static_cast<size_t>(std::countr_zero(m));
                const ProgInstr &b = instrOf(u);
                if (b.kind != ProgInstr::Kind::Gpf && b.addr != x)
                    nts |= 1u << u;
            }
            for (uint32_t m = cs0; m; m &= m - 1) {
                size_t n = static_cast<size_t>(std::countr_zero(m));
                NodeId nn = static_cast<NodeId>(n);
                if (model_.config().ownerOf(x) != nn &&
                    !scratch.cacheValid(nn, x))
                    ncs |= 1u << n;
            }
            return nts | (ncs << 16);
        };
        // Crashes of distinct machines always commute: cache wipes
        // hit disjoint rows, PSN poison only lowers lines toward
        // bottom (idempotent under the other machine's wipe), and
        // volatile resets hit disjoint memory rows.
        auto sleepAfterCrash = [&](uint32_t ts0, uint32_t cs0,
                                   size_t n) -> uint32_t {
            // Completion guards: a sleeper rides into this crash
            // successor on the promise that the sleeper-first
            // ordering was explored *and replays this crash*. If the
            // sleeper's own firing completes the program, that
            // ordering ends in a terminal completion config (crashes
            // past completion are not explored, and Outcome records
            // which threads crashed), so the promise is void and the
            // sleeper must stay awake — the PR 7 completion-step
            // condition, applied to the sleep layer.
            uint32_t unfinished = 0;
            for (size_t u = 0; u < nthreads; ++u)
                if ((cur.alive >> u & 1) &&
                    pcOf(cur.pc, u) <
                        program_.threads[u].code.size())
                    unfinished |= 1u << u;
            uint32_t nts = 0;
            for (uint32_t m = ts0; m; m &= m - 1) {
                size_t u = static_cast<size_t>(std::countr_zero(m));
                if (!indepCI(n, program_.threads[u].node,
                             instrOf(u)))
                    continue;
                if (pcOf(cur.pc, u) + 1 >=
                        program_.threads[u].code.size() &&
                    (unfinished & ~(1u << u)) == 0)
                    continue; // u's step would complete the program
                nts |= 1u << u;
            }
            uint32_t ncs = cs0 & ~(1u << n);
            for (uint32_t m = ncs; m; m &= m - 1) {
                size_t k = static_cast<size_t>(std::countr_zero(m));
                if ((unfinished & ~node_threads[k]) == 0)
                    ncs &= ~(1u << k); // crash(k) would complete it
            }
            return nts | (ncs << 16);
        };
        // Persistent-set crash deferral: prune the crash(n) edge
        // here and confront it again at every successor (the budget
        // is untouched by thread and tau steps, so it stays
        // enabled). Sound when the remaining transitions form a
        // persistent set with crash(n) outside it:
        //   - crash(n) is independent of every unfinished thread's
        //     *current* instruction, enabled or blocked (indepCI
        //     also guarantees the crash cannot enable or disable
        //     it), and hosts no unfinished thread itself;
        //   - crash(n) is independent of every pending tau move
        //     (the move neither reads nor fills C_n, and n does not
        //     own the moved address);
        //   - deferral cannot be "ignored": completion configs are
        //     terminal (the search reads outcomes there), so no
        //     single retained step may complete the program — at
        //     least two instructions must remain, and no other
        //     machine's crash may kill every remaining unfinished
        //     thread. Deeper chains re-check at each successor, and
        //     the config graph is acyclic, so a pruned crash is
        //     always taken before completion in the covering trace.
        // This is the PR 7 completion-step condition generalized
        // from the ample singleton to crash-edge pruning.
        auto crashPersistable = [&](size_t n) -> bool {
            NodeId nn = static_cast<NodeId>(n);
            size_t remaining = 0;
            for (size_t u = 0; u < nthreads; ++u) {
                if (!(cur.alive >> u & 1))
                    continue;
                size_t upc = pcOf(cur.pc, u);
                const auto &code = program_.threads[u].code;
                if (upc >= code.size())
                    continue;
                if (program_.threads[u].node == nn)
                    return false;
                if (!indepCI(n, program_.threads[u].node,
                             code[upc]))
                    return false;
                remaining += code.size() - upc;
            }
            if (remaining < 2)
                return false;
            for (size_t m = 0; m < nnodes; ++m) {
                if (m == n || budgetw.get(cur.crash, m) == 0)
                    continue;
                size_t off_m = 0;
                for (size_t u = 0; u < nthreads; ++u)
                    if ((cur.alive >> u & 1) &&
                        program_.threads[u].node !=
                            static_cast<NodeId>(m) &&
                        pcOf(cur.pc, u) <
                            program_.threads[u].code.size())
                        ++off_m;
                if (off_m == 0)
                    return false;
            }
            for (const auto &[x, succ] :
                 me.eng.tauSuccessorsOf(cur.state)) {
                if (model_.config().ownerOf(x) == nn ||
                    scratch.cacheValid(nn, x))
                    return false;
            }
            return true;
        };
        // Crash-step ample condition: crash(n)'s entire effect is
        // invisible from this configuration, so the branch that
        // takes it reaches outcomes the branch that skips it also
        // reaches (subset subsumption — see README). Requires:
        // no alive thread dies (the PR 7 completion-step condition
        // generalized: Outcome records crashed threads), n's cache
        // row is already empty (wipe is a no-op), under PSN no other
        // cache holds an n-owned line (poison is a no-op), and a
        // volatile n's owned memory cells either already hold the
        // reset value or sit outside every live thread's future
        // footprint.
        auto crashDeferrable = [&](size_t n) -> bool {
            if (cur.alive & node_threads[n])
                return false;
            NodeId nn = static_cast<NodeId>(n);
            for (Addr x = 0; x < naddrs; ++x)
                if (scratch.cacheValid(nn, x))
                    return false;
            const uint64_t owned = owned_mask[n];
            if (owned &&
                model_.variant() == model::ModelVariant::Psn) {
                for (Addr x = 0; x < naddrs; ++x)
                    if ((owned >> x & 1) &&
                        scratch.cachedAnywhere(x))
                        return false;
            }
            if (owned && !model_.config().isPersistent(nn)) {
                for (Addr x = 0; x < naddrs; ++x) {
                    if (!(owned >> x & 1))
                        continue;
                    if ((live_mask >> x & 1) &&
                        scratch.memory(x) != kInitValue)
                        return false;
                }
            }
            return true;
        };

        while (sf.pop(w, cur, admit)) {
            ++me.partial.stats.configsVisited;
            if ((me.partial.stats.configsVisited & 255) == 0) {
                // Telemetry publishes piggyback on the existing
                // deadline-poll cadence: no extra clock reads, and
                // the deadline check itself fires at exactly the
                // same visit counts as before.
                if (pub.enabled())
                    publishSample();
                if (deadline.expired()) {
                    me.partial.truncated = true;
                    me.partial.timedOut = true;
                    sf.stopAll();
                    sf.done();
                    break;
                }
                // Checkpoint cadence: the first worker to observe
                // the threshold arms the rendezvous; everyone then
                // parks at their next pop() and the last arriver
                // writes the snapshot.
                if (do_ckpt && !sf.pauseRequested() &&
                    total_visited.load(std::memory_order_relaxed) >=
                        next_ckpt_at.load(
                            std::memory_order_relaxed)) {
                    bool expected = false;
                    if (ckpt_armed.compare_exchange_strong(expected,
                                                           true))
                        sf.requestPause();
                }
                if (shed_arena != nullptr) {
                    uint64_t tv = total_visited.load(
                        std::memory_order_relaxed);
                    uint64_t at = next_shed_at.load(
                        std::memory_order_relaxed);
                    if (tv >= at &&
                        next_shed_at.compare_exchange_strong(
                            at, tv + kShedInterval,
                            std::memory_order_relaxed))
                        shed_arena->shed();
                }
            }

            me.eng.materializeState(cur.state, scratch);
            // Copy the register span out of the shared table before
            // interning successors into it.
            std::copy(reg_files.at(cur.regs),
                      reg_files.at(cur.regs) + reg_stride,
                      cur_regs.begin());

            bool done = true;
            for (size_t t = 0; t < nthreads; ++t) {
                if ((cur.alive >> t & 1) &&
                    pcOf(cur.pc, t) < program_.threads[t].code.size()) {
                    done = false;
                    break;
                }
            }
            if (done) {
                uint32_t crashed = all_alive & ~cur.alive;
                uint64_t key =
                    (static_cast<uint64_t>(cur.regs) << 32) | crashed;
                if (me.emitted.insert(key).second) {
                    Outcome out;
                    out.regs.resize(nthreads);
                    for (size_t t = 0; t < nthreads; ++t)
                        out.regs[t].assign(
                            cur_regs.begin() + t * nregs,
                            cur_regs.begin() + (t + 1) * nregs);
                    out.crashedThreads = crashed;
                    me.partial.outcomes.insert(std::move(out));
                }
                // Tau and crash steps past completion cannot change
                // the registers, so this configuration is final.
                sf.done();
                continue;
            }

            live_mask = 0;
            future_gpf = false;
            if (can_reduce) {
                for (size_t t = 0; t < nthreads; ++t) {
                    if (!(cur.alive >> t & 1))
                        continue;
                    size_t pc = pcOf(cur.pc, t);
                    live_mask |= addr_mask[t][pc];
                    future_gpf |= gpf_after[t][pc] != 0;
                }
            }
            ts = use_sleep ? cur.sleep & 0xffffu : 0;
            cs = use_sleep ? cur.sleep >> 16 : 0;

            // Ample-set reduction: when some live thread's next step
            // provably commutes with everything else still possible
            // from this configuration, expand *only* that thread.
            // Two shapes qualify (README has the full argument):
            //
            //   - invisible steps: an *enabled* flush or GPF mutates
            //     nothing and writes no register, so running it first
            //     loses no interleaving;
            //   - local steps on one address x, provided (a) no other
            //     live thread's remaining code touches x and none has
            //     a GPF ahead, (b) no cache anywhere holds x (hence
            //     no tau move on x is pending or creatable by
            //     others), and (c) every machine that can still
            //     crash is independent of the step: a crash of t's
            //     own machine must annihilate it (a cache-local
            //     store the wipe erases), a crash of x's owner must
            //     neither reset the memory cell the step relies on
            //     (volatile owner) nor wipe/poison a line the step
            //     writes.
            //
            // Both shapes additionally require that the step not be
            // the *final instruction of its own thread* while a
            // machine hosting an alive thread can still crash.
            // Completed configurations are final (crashes past
            // completion are not explored) and Outcome records
            // *which* threads crashed, so orderings that crash late
            // must stay reachable. If the ample step finishes thread
            // t's code, the deferred interleaving where the other
            // threads first run to completion loses its pending
            // crash entirely — the crash was only enabled while t's
            // last instruction was still outstanding. Any non-final
            // step of t keeps t's code nonempty in every deferred
            // interleaving, so completion cannot overtake a pending
            // crash that the original orderings could take.
            //
            // Every check is a pure function of the configuration, so
            // the reduced graph — and every count derived from it —
            // is identical for any worker count, frontier policy, or
            // steal schedule.
            if (use_ample) {
                auto completion_safe = [&](size_t t) {
                    if (pcOf(cur.pc, t) + 1 <
                        program_.threads[t].code.size())
                        return true; // t's code stays nonempty
                    for (size_t n = 0; n < nnodes; ++n) {
                        if (budgetw.get(cur.crash, n) > 0 &&
                            (cur.alive & node_threads[n]) != 0)
                            return false;
                    }
                    return true;
                };
                int ample_t = -1;
                for (size_t t = 0; t < nthreads && ample_t < 0; ++t) {
                    if (!(cur.alive >> t & 1))
                        continue;
                    const ProgThread &thread = program_.threads[t];
                    size_t pc = pcOf(cur.pc, t);
                    if (pc >= thread.code.size())
                        continue;
                    // NOTE: selection deliberately ignores the sleep
                    // word. Electing a sleeping thread re-derives
                    // covered work (harmless), but letting the word
                    // veto the ample choice would make the explored
                    // edge set non-monotone in the sleep word — and
                    // the sleep-merge fixpoint schedule-dependent.
                    const ProgInstr &instr = thread.code[pc];
                    const NodeId node = thread.node;
                    const auto &restr = model_.restrictions();
                    if (instr.kind == ProgInstr::Kind::Flush) {
                        if (restr.allows(node, instr.op) &&
                            completion_safe(t) &&
                            (instr.op == Op::LFlush
                                 ? !scratch.cacheValid(node,
                                                       instr.addr)
                                 : !scratch.cachedAnywhere(
                                       instr.addr)))
                            ample_t = static_cast<int>(t);
                        continue;
                    }
                    if (instr.kind == ProgInstr::Kind::Gpf) {
                        if (restr.allows(node, Op::Gpf) &&
                            completion_safe(t) &&
                            scratch.allCachesEmpty())
                            ample_t = static_cast<int>(t);
                        continue;
                    }
                    // Local step on one address.
                    const Addr x = instr.addr;
                    uint64_t others = 0;
                    bool others_gpf = false;
                    for (size_t u = 0; u < nthreads; ++u) {
                        if (u == t || !(cur.alive >> u & 1))
                            continue;
                        size_t upc = pcOf(cur.pc, u);
                        others |= addr_mask[u][upc];
                        others_gpf |= gpf_after[u][upc] != 0;
                    }
                    if (others_gpf || (others >> x & 1))
                        continue;
                    if (!completion_safe(t))
                        continue;
                    if (scratch.cachedAnywhere(x))
                        continue;
                    // Enabledness without mutation. With no cached
                    // copy anywhere a load/RMW is served from memory
                    // and never blocks; stores are always enabled.
                    // Restricted ops fall back to the full expansion.
                    if (!restr.allows(node, instr.op) ||
                        ((instr.kind == ProgInstr::Kind::Cas ||
                          instr.kind == ProgInstr::Kind::Faa) &&
                         !restr.allows(node, Op::Load)))
                        continue;
                    const bool writes_owner_cache =
                        instr.op == Op::RStore ||
                        instr.op == Op::RRmw;
                    const bool may_leave_line =
                        instr.op == Op::LStore ||
                        instr.op == Op::LRmw;
                    bool ok = true;
                    for (size_t n = 0; n < nnodes && ok; ++n) {
                        if (budgetw.get(cur.crash, n) == 0)
                            continue;
                        NodeId nn = static_cast<NodeId>(n);
                        if (nn == node) {
                            // The crash kills t: sound only when it
                            // also erases the step's entire effect —
                            // a register-free store into t's own
                            // cache (no other copy exists to
                            // invalidate, by (b)).
                            ok = instr.kind ==
                                     ProgInstr::Kind::Store &&
                                 (instr.op == Op::LStore ||
                                  (instr.op == Op::RStore &&
                                   model_.config().ownerOf(x) ==
                                       node));
                        } else if (model_.config().ownerOf(x) ==
                                   nn) {
                            ok = model_.config().isPersistent(nn) &&
                                 !writes_owner_cache &&
                                 !(model_.variant() ==
                                       model::ModelVariant::Psn &&
                                   may_leave_line);
                        }
                        // Any other machine's crash touches neither
                        // x nor thread t: independent.
                    }
                    if (ok)
                        ample_t = static_cast<int>(t);
                }
                if (ample_t >= 0) {
                    const size_t t = static_cast<size_t>(ample_t);
                    const ProgThread &thread = program_.threads[t];
                    size_t pc = pcOf(cur.pc, t);
                    work = scratch;
                    StepEffect eff = stepInstrInPlace(
                        model_, thread.code[pc], thread.node,
                        cur_regs.data() + t * nregs, work);
                    CXL0_ASSERT(eff.enabled,
                                "ample-selected step must be enabled");
                    PackedConfig next = cur;
                    next.state = me.eng.internState(work);
                    next.pc = pcw.set(cur.pc, t, pc + 1);
                    if (eff.destReg >= 0) {
                        size_t slot = t * nregs + eff.destReg;
                        if (cur_regs[slot] != eff.destVal) {
                            reg_buf = cur_regs;
                            reg_buf[slot] = eff.destVal;
                            next.regs = reg_files.intern(
                                reg_buf.data(),
                                model::updateValueSpanHash(
                                    reg_files.hashOf(cur.regs),
                                    slot, cur_regs[slot],
                                    eff.destVal));
                        }
                    }
                    if (use_sleep && (ts | cs)) {
                        const ProgInstr &ai = thread.code[pc];
                        // A crash of the ample thread's own machine
                        // kills it and disables the step in the
                        // covered reordering — always wake that
                        // machine's sleeper.
                        const uint32_t ncs =
                            cs & ~(1u << thread.node);
                        if (ai.kind == ProgInstr::Kind::Gpf) {
                            // The enabled GPF mutates nothing and
                            // every cache is empty, so sleeping
                            // loads are served from memory and
                            // sleeping flushes stay no-ops in either
                            // order; a sleeping store could refill a
                            // cache and disable the GPF — wake it.
                            uint32_t nts = 0;
                            for (uint32_t m = ts & ~(1u << t); m;
                                 m &= m - 1) {
                                size_t u = static_cast<size_t>(
                                    std::countr_zero(m));
                                auto k = instrOf(u).kind;
                                if (k == ProgInstr::Kind::Load ||
                                    k == ProgInstr::Kind::Flush)
                                    nts |= 1u << u;
                            }
                            next.sleep = nts | (ncs << 16);
                        } else if (ai.kind ==
                                   ProgInstr::Kind::Flush) {
                            // The invisible flush mutates nothing;
                            // only a sleeper on the flushed address
                            // (which could validate the line) or a
                            // GPF must wake.
                            uint32_t nts = 0;
                            for (uint32_t m = ts & ~(1u << t); m;
                                 m &= m - 1) {
                                size_t u = static_cast<size_t>(
                                    std::countr_zero(m));
                                const ProgInstr &b = instrOf(u);
                                if (b.kind !=
                                        ProgInstr::Kind::Gpf &&
                                    b.addr != ai.addr)
                                    nts |= 1u << u;
                            }
                            next.sleep = nts | (ncs << 16);
                        } else {
                            next.sleep =
                                sleepAfterThread(ts, cs, t, ai);
                        }
                    }
                    ++me.partial.stats.ampleSkipped;
                    push(next);
                    sf.done();
                    continue;
                }
            }

            // Thread steps. done_t/done_c accumulate the siblings
            // already expanded from this configuration in the fixed
            // canonical order (threads ascending, then tau, then
            // crashes ascending); later siblings put explored
            // independent earlier siblings to sleep in their
            // successor, which prunes the second half of every
            // commuting diamond.
            uint32_t done_t = 0;
            for (size_t t = 0; t < nthreads; ++t) {
                if (!(cur.alive >> t & 1))
                    continue;
                const ProgThread &thread = program_.threads[t];
                size_t pc = pcOf(cur.pc, t);
                if (pc >= thread.code.size())
                    continue;
                if (ts >> t & 1) {
                    // Asleep: some explored sibling ordering covers
                    // every trace that runs t's (still enabled,
                    // unchanged) step first.
                    ++me.partial.stats.sleepSetSkipped;
                    continue;
                }
                work = scratch;
                StepEffect eff = stepInstrInPlace(
                    model_, thread.code[pc], thread.node,
                    cur_regs.data() + t * nregs, work);
                if (!eff.enabled)
                    continue;
                PackedConfig next = cur;
                next.state = me.eng.internState(work);
                next.pc = pcw.set(cur.pc, t, pc + 1);
                size_t slot = t * nregs + eff.destReg;
                if (eff.destReg >= 0 &&
                    cur_regs[slot] != eff.destVal) {
                    reg_buf = cur_regs;
                    reg_buf[slot] = eff.destVal;
                    next.regs = reg_files.intern(
                        reg_buf.data(),
                        model::updateValueSpanHash(
                            reg_files.hashOf(cur.regs), slot,
                            cur_regs[slot], eff.destVal));
                }
                if (use_sleep) {
                    next.sleep = sleepAfterThread(
                        ts | done_t, cs, t, thread.code[pc]);
                    done_t |= 1u << t;
                }
                push(next);
            }

            // Silent propagation steps (successor states memoized
            // once per interned state across all workers). Tau moves
            // never sleep — their successors are deduplicated per
            // interned state — but they do inherit and filter the
            // sleepers accumulated so far.
            me.tauBuf = me.eng.tauSuccessorsOf(cur.state);
            for (const auto &[addr, succ] : me.tauBuf) {
                if (can_reduce && !future_gpf &&
                    !(live_mask >> addr & 1)) {
                    ++me.partial.stats.tauMovesSkipped;
                    continue;
                }
                PackedConfig next = cur;
                next.state = succ;
                if (use_sleep)
                    next.sleep =
                        sleepAfterTau(ts | done_t, cs, addr);
                push(next);
            }

            // Crash steps (successor states memoized per (state,
            // node); nodes that can never crash under the request are
            // never interned).
            uint32_t done_c = 0;
            for (size_t n = 0; n < nnodes; ++n) {
                int budget =
                    static_cast<int>(budgetw.get(cur.crash, n));
                if (budget <= 0)
                    continue;
                if (use_crash_ample &&
                    (crashDeferrable(n) || crashPersistable(n))) {
                    // Either the crash's entire effect is invisible
                    // here (every outcome below the crash branch is
                    // also reached by the sibling that skips it), or
                    // the crash commutes with every remaining
                    // transition and is confronted again at each
                    // successor before completion.
                    ++me.partial.stats.crashAmpleSkipped;
                    continue;
                }
                if (cs >> n & 1) {
                    ++me.partial.stats.sleepSetSkipped;
                    continue;
                }
                PackedConfig next = cur;
                next.state = me.eng.crashSuccessorOf(
                    cur.state, static_cast<NodeId>(n));
                next.crash = budgetw.set(cur.crash, n, budget - 1);
                for (size_t t = 0; t < nthreads; ++t) {
                    if (program_.threads[t].node != n)
                        continue;
                    next.alive &= ~(1u << t);
                    // A dead thread never steps again and outcomes
                    // read its registers and crashed bit, never its
                    // pc — the pc is inert, so canonicalize it to
                    // the code length. Configurations that differ
                    // only in how far a victim got (with equal state
                    // and registers) are bisimilar and merge.
                    if (use_crash_ample)
                        next.pc = pcw.set(
                            next.pc, t,
                            program_.threads[t].code.size());
                }
                if (use_sleep) {
                    next.sleep = sleepAfterCrash(ts | done_t,
                                                 cs | done_c, n);
                    done_c |= 1u << n;
                }
                push(next);
            }
            sf.done();
        }

        // Leaving the pop loop for good: a pending pause rendezvous
        // must stop counting on this worker.
        sf.workerExit(w);

        // Worker-owned peak: visited set, this shard's frontier
        // share, and the per-worker scratch engine.
        me.partial.stats.peakVisitedBytes =
            me.visited.bytes() + sf.bytes(w) + me.eng.bytes();
        // Frontier-side counters add onto any checkpoint-restored
        // base (they reset to zero in a resumed process).
        auto [attempted, succeeded] = sf.stealCounters(w);
        me.partial.stats.stealsAttempted += attempted;
        me.partial.stats.stealsSucceeded += succeeded;
        auto [spilled, sbytes] = sf.spillCounters(w);
        me.partial.stats.spilledConfigs +=
            spilled + me.visited.spilledEntries();
        me.partial.stats.spillBytes +=
            sbytes + me.visited.spilledBytes();
        me.partial.stats.inboxBatches += sf.inboxBatchCount(w);
        if (pub.enabled())
            publishSample(); // final totals for this worker
    };

    runOnWorkers(nworkers, run_worker);

    // Deterministic merge: outcome sets union order-independently,
    // additive counters sum, shared-table bytes count once.
    for (ExplorerWorker &wkr : workers) {
        res.outcomes.insert(wkr.partial.outcomes.begin(),
                            wkr.partial.outcomes.end());
        res.truncated |= wkr.partial.truncated;
        res.timedOut |= wkr.partial.timedOut;
        res.stats.merge(wkr.partial.stats);
    }
    // A halt-after-checkpoint stop abandoned queued work on purpose;
    // the report must say Inconclusive, not Pass.
    res.truncated |= halted_after_ckpt.load(std::memory_order_relaxed);
    res.stats.checkpointsWritten =
        ckpt_count.load(std::memory_order_relaxed);
    res.verdict = res.truncated ? CheckVerdict::Inconclusive
                                : CheckVerdict::Pass;
    res.stats.configsInterned =
        total_visited.load(std::memory_order_relaxed);
    ctx.fillStats(res.stats);
    res.stats.tableBytes = ctx.bytes() + reg_files.bytes();
    res.stats.peakVisitedBytes += res.stats.tableBytes;
    finalizeReportTiming(res, t_start);
    return res;
}

namespace
{

/** Full deep-copy search configuration (reference implementation). */
struct RefConfig
{
    State state;
    std::vector<size_t> pc;
    std::vector<std::vector<Value>> regs;
    std::vector<bool> alive;      // thread not killed by a crash
    std::vector<int> crashBudget; // remaining crashes per node

    bool operator==(const RefConfig &other) const = default;
};

struct RefConfigHash
{
    size_t
    operator()(const RefConfig &c) const
    {
        // Full rescan, as the seed implementation hashed states before
        // the digest became incrementally maintained. Keeping the
        // rescan here preserves the reference's original cost profile
        // for before/after benchmarking.
        uint64_t h = c.state.recomputeHash();
        auto mix = [&h](uint64_t v) {
            h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        };
        for (size_t p : c.pc)
            mix(p);
        for (const auto &file : c.regs)
            for (Value v : file)
                mix(static_cast<uint64_t>(v));
        for (bool a : c.alive)
            mix(a ? 1 : 2);
        for (int b : c.crashBudget)
            mix(static_cast<uint64_t>(b) + 7);
        return static_cast<size_t>(h);
    }
};

/** Estimated resident bytes of one deep-copy configuration. */
size_t
refConfigBytes(const RefConfig &c)
{
    size_t b = sizeof(RefConfig);
    b += c.state.cacheLines().capacity() * sizeof(Value);
    b += c.state.memLines().capacity() * sizeof(Value);
    b += c.pc.capacity() * sizeof(size_t);
    b += c.regs.capacity() * sizeof(std::vector<Value>);
    for (const auto &file : c.regs)
        b += file.capacity() * sizeof(Value);
    b += c.alive.capacity() / 8;
    b += c.crashBudget.capacity() * sizeof(int);
    return b;
}

} // namespace

CheckReport
Explorer::checkReference() const
{
    auto t_start = std::chrono::steady_clock::now();
    const size_t nthreads = program_.threads.size();
    RefConfig init{model_.initialState(), {}, {}, {}, {}};
    init.pc.assign(nthreads, 0);
    init.regs.assign(nthreads,
                     std::vector<Value>(program_.numRegs, 0));
    init.alive.assign(nthreads, true);
    init.crashBudget.assign(model_.config().numNodes(),
                            request_.maxCrashesPerNode);
    if (!request_.crashableNodes.empty()) {
        for (NodeId n = 0; n < model_.config().numNodes(); ++n)
            init.crashBudget[n] = 0;
        for (NodeId n : request_.crashableNodes)
            init.crashBudget[n] = request_.maxCrashesPerNode;
    }

    CheckReport res;
    std::unordered_set<RefConfig, RefConfigHash> visited;
    std::vector<RefConfig> stack{init};
    visited.insert(init);
    // Estimated bytes: per-config heap plus ~2 words of hash-node
    // overhead each; bucket array added at the end.
    size_t config_bytes = refConfigBytes(init) + 2 * sizeof(void *);

    auto done = [&](const RefConfig &c) {
        for (size_t t = 0; t < nthreads; ++t) {
            if (c.alive[t] && c.pc[t] < program_.threads[t].code.size())
                return false;
        }
        return true;
    };

    auto push = [&](RefConfig &&c) {
        if (visited.size() >= request_.maxConfigs) {
            if (!visited.count(c))
                res.truncated = true;
            return;
        }
        size_t b = refConfigBytes(c) + 2 * sizeof(void *);
        if (visited.insert(c).second) {
            config_bytes += b;
            stack.push_back(std::move(c));
        }
    };

    const Deadline deadline(request_.timeBudgetMs);
    while (!stack.empty()) {
        RefConfig cur = std::move(stack.back());
        stack.pop_back();
        ++res.stats.configsVisited;
        if ((res.stats.configsVisited & 255) == 0 &&
            deadline.expired()) {
            res.truncated = true;
            res.timedOut = true;
            break;
        }

        if (done(cur)) {
            Outcome out;
            out.regs = cur.regs;
            for (size_t t = 0; t < nthreads; ++t)
                if (!cur.alive[t])
                    out.crashedThreads |= 1u << t;
            res.outcomes.insert(std::move(out));
            // Tau and crash steps past completion cannot change the
            // registers, so this configuration is final.
            continue;
        }

        // Thread steps.
        for (size_t t = 0; t < nthreads; ++t) {
            if (!cur.alive[t] ||
                cur.pc[t] >= program_.threads[t].code.size()) {
                continue;
            }
            const ProgThread &thread = program_.threads[t];
            // Copy only the state until the step is known enabled,
            // matching the seed's cost profile for blocked steps.
            State next_state = cur.state;
            StepEffect eff = stepInstrInPlace(
                model_, thread.code[cur.pc[t]], thread.node,
                cur.regs[t].data(), next_state);
            if (!eff.enabled)
                continue;
            RefConfig next = cur;
            next.state = std::move(next_state);
            next.pc[t] += 1;
            if (eff.destReg >= 0)
                next.regs[t][eff.destReg] = eff.destVal;
            push(std::move(next));
        }

        // Silent propagation steps.
        for (State &next_state : model_.tauSuccessors(cur.state)) {
            RefConfig next = cur;
            next.state = std::move(next_state);
            push(std::move(next));
        }

        // Crash steps.
        for (NodeId n = 0; n < model_.config().numNodes(); ++n) {
            if (cur.crashBudget[n] <= 0)
                continue;
            RefConfig next = cur;
            next.state = model_.applyCrash(cur.state, n);
            next.crashBudget[n] -= 1;
            for (size_t t = 0; t < nthreads; ++t)
                if (program_.threads[t].node == n)
                    next.alive[t] = false;
            push(std::move(next));
        }
    }

    res.verdict = res.truncated ? CheckVerdict::Inconclusive
                                : CheckVerdict::Pass;
    res.stats.configsInterned = visited.size();
    res.stats.statesInterned = visited.size();
    res.stats.peakVisitedBytes =
        config_bytes + visited.bucket_count() * sizeof(void *) +
        stack.capacity() * sizeof(RefConfig);
    finalizeReportTiming(res, t_start);
    return res;
}

} // namespace cxl0::check
