/**
 * @file
 * The shared search core and the unified Request/Report API.
 *
 * Every checker in src/check explores the same CXL0 LTS. Since the
 * sharded-search refactor the core is split into three concurrency
 * tiers:
 *
 *   - ModelContext: the immutable-model, shared-mutable-table tier.
 *     One per (model, search); owns the concurrent interning tables
 *     (model::StateTable for states, model::FrameTable for state-set
 *     frames) and the once-per-state successor memos (tau moves,
 *     crash successors, frame tau-closures) behind atomic
 *     publish-once slots. Every worker thread of a parallel search
 *     shares one ModelContext: a StateId/FrameId minted by any worker
 *     is meaningful to all of them.
 *
 *   - ShardEngine: the per-worker tier. Holds the scratch states,
 *     move buffers, and epoch-mark vectors one search worker needs to
 *     generate successors in place; delegates all interning and memo
 *     publication to its ModelContext. Construction is cheap — the
 *     sharded drivers build one per worker thread.
 *
 *   - SearchEngine: the historical single-threaded facade, now
 *     exactly a ModelContext bundled with one ShardEngine. Existing
 *     callers (trace feasibility, enumeration, tests) keep working
 *     unchanged.
 *
 *   - PackedConfig / FlatConfigSet / ConfigFrontier: the 32-byte POD
 *     configuration, the flat open-addressed visited set, and the
 *     per-shard frontier (DFS stack / BFS queue policy).
 *     ShardedFrontier composes N per-shard frontiers with cross-shard
 *     handoff inboxes and a pending-count termination barrier — the
 *     parallel drivers in explorer.cc and refinement.cc run on it.
 *
 *   - FlatDepthMap: the open-addressed (key -> best depth) memo the
 *     depth-bounded searches use for revisit pruning; one probe-loop
 *     template shared by the engine and reference refinement paths.
 *
 *   - CheckRequest / CheckReport: the uniform vocabulary. A request
 *     carries budgets (configs, depth), reduction toggles, crash
 *     settings, and the worker-thread count; a report carries a
 *     verdict, outcome set, truncation flag, unified SearchStats, and
 *     a typed counterexample. All four checkers (Explorer,
 *     checkTraceFeasible, checkRefinement, checkTraceInclusion) speak
 *     this vocabulary; their historical entry points remain as thin
 *     shims. For runs that complete within their budgets, verdicts,
 *     outcome sets, and counterexample existence are independent of
 *     CheckRequest::numThreads by construction.
 */

#ifndef CXL0_CHECK_ENGINE_HH
#define CXL0_CHECK_ENGINE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/segmented.hh"
#include "common/spill.hh"
#include "model/label.hh"
#include "model/semantics.hh"
#include "model/state_table.hh"
#include "obs/trace.hh"

namespace cxl0::check
{

using model::Cxl0Model;
using model::FrameId;
using model::Label;
using model::State;
using model::StateId;

// ===================================================================
// Request / Report vocabulary
// ===================================================================

/** How the configurations awaiting expansion are ordered. */
enum class FrontierPolicy
{
    DepthFirst,   //!< LIFO stack (default; lowest memory)
    BreadthFirst, //!< FIFO queue (shortest-counterexample order)
};

/**
 * Which partial-order reduction the explorer applies. Every mode
 * produces the *identical* outcome set (asserted by the regression
 * tests and the scaling bench on every run); they differ only in how
 * many configurations the search must visit to compute it.
 */
enum class Reduction
{
    None, //!< expand every enabled successor (the reference graph)
    Tau,  //!< skip tau moves outside every live suffix footprint
    Ample, //!< Tau + singleton ample sets for thread steps (default)
    /**
     * Ample + the crash-step ample condition: a pending crash whose
     * state effect is provably invisible to every live thread's
     * remaining code (and which cannot mark any thread crashed) is
     * deferred — its subtree's outcomes are a subset of the
     * undeferred subtree's, so the branch is pruned outright.
     */
    CrashAmple,
    /**
     * CrashAmple + sleep sets over thread and crash steps: after the
     * search explores step a before step b from a configuration, the
     * commuting reordering b-then-a is suppressed in b's subtree
     * until a dependent step wakes it. The visited set stores one
     * sleep word per core configuration and intersects the words of
     * converging paths (re-expanding on strict shrink), so the node
     * set is a subset of the Ample graph and the fixpoint is
     * schedule-invariant under work stealing.
     */
    Sleep,
    /**
     * Sleep + crash-budget symmetry: interchangeable machines (no
     * threads, no owned addresses, identical static attributes) are
     * canonicalized by sorting their (cache row, crash budget) pairs
     * at admission time, merging configurations identical up to a
     * renaming of such machines.
     */
    Full,
};

/** "none" / "tau" / "ample" / "crash-ample" / "sleep" / "full". */
const char *reductionName(Reduction r);

/** Parse a reduction-mode name; returns false on an unknown name. */
bool parseReduction(const char *name, Reduction *out);

/**
 * A checking request: budgets and toggles every checker understands.
 * Checker-specific inputs (the program, the trace, the alphabet) stay
 * positional; this struct is the shared part.
 */
struct CheckRequest
{
    /**
     * Budget on distinct configurations (explorer: packed configs in
     * the visited sets; refinement: determinized frame pairs; trace
     * checkers: interned states). Hitting it stops the search
     * gracefully and sets CheckReport::truncated. With multiple
     * workers the cut is approximate (each worker observes the shared
     * count without a barrier), but never silently dropped.
     */
    size_t maxConfigs = 2'000'000;

    /**
     * Depth bound for trace-generating searches (visible labels per
     * trace). 0 means unbounded; checkers that cannot terminate
     * without a bound (refinement) reject 0. The explorer ignores it:
     * programs are straight-line and finite.
     */
    size_t maxDepth = 0;

    /**
     * Wall-clock budget in milliseconds; 0 = unbounded. A search that
     * crosses the deadline stops gracefully: the report carries
     * `truncated` (Pass degrades to Inconclusive) and every count
     * gathered so far, exactly like an exhausted maxConfigs. The cut
     * is approximate — workers poll the clock between expansions —
     * and, like a maxConfigs cut, which configurations fit under it
     * depends on scheduling, so timed-out partial results are not
     * reproducible across runs.
     */
    uint64_t timeBudgetMs = 0;

    /** Max crash events per machine over one execution (explorer). */
    int maxCrashesPerNode = 0;

    /** Machines permitted to crash; empty = all machines. */
    std::vector<NodeId> crashableNodes;

    /**
     * Partial-order reduction for the explorer (ignored by checkers
     * whose traces observe tau placement indirectly). `Tau` skips
     * tau moves on addresses that no live thread's remaining code
     * can ever touch again (and no GPF is pending); `Ample` (the
     * default) additionally collapses a configuration to a single
     * thread step when that step provably commutes with everything
     * else still possible — see src/check/README.md for the
     * conditions and the soundness argument. Both preserve the exact
     * outcome set; the ample condition is a pure function of the
     * configuration, so the reduced graph (and with it every count
     * the reports carry) is independent of worker scheduling.
     */
    Reduction reduction = Reduction::Ample;

    /** Frontier ordering (outcome sets are order-independent). */
    FrontierPolicy frontier = FrontierPolicy::DepthFirst;

    /**
     * Worker threads for the sharded search. 1 (the default)
     * reproduces the single-threaded search exactly — same pop
     * order, same stats, no thread is spawned. N > 1 partitions
     * configurations by hash across N shard workers over one shared
     * ModelContext. For searches that complete within their budgets,
     * verdicts, outcome sets, and counterexample *existence* are
     * independent of this setting; wall-clock, the division of
     * per-worker stats, and which counterexample is reported first
     * are not. A run cut by maxConfigs is the exception: the
     * scheduling decides which configurations fit under the budget,
     * so truncated partial results (and with them the
     * Pass-vs-Inconclusive line) can move with the worker count.
     * Checkers whose search is a single serialized chain (trace
     * feasibility) accept the field and run one worker.
     */
    size_t numThreads = 1;

    bool operator==(const CheckRequest &other) const = default;
};

/** Three-valued verdict shared by every checker. */
enum class CheckVerdict
{
    Pass,         //!< property holds / enumeration complete
    Fail,         //!< property violated (counterexample attached)
    Inconclusive, //!< budget or bound cut the search before an answer
};

/** "pass" / "fail" / "inconclusive". */
const char *checkVerdictName(CheckVerdict v);

/**
 * Counters describing one search run, shared by all checkers.
 *
 * Memory accounting is split so parallel runs do not double-count:
 * `peakVisitedBytes` covers what a worker *owns* (visited set,
 * frontier share, scratch) and is summed across workers by merge();
 * `tableBytes` covers the *shared* arenas (state/frame/register
 * tables, successor memos) and is counted once per report (merge
 * takes the max, the drivers then fold it into the total exactly
 * once). `processPeakRssBytes` is the kernel's view of the whole
 * process, sampled at report finalization.
 */
struct SearchStats
{
    /** Configurations (or frames) popped and expanded. */
    size_t configsVisited = 0;
    /** Distinct packed configurations / frame pairs seen. */
    size_t configsInterned = 0;
    /** Distinct model states in the interning table(s). */
    size_t statesInterned = 0;
    /** Distinct state-set frames in the frame table(s). */
    size_t framesInterned = 0;
    /** Resident bytes of visited set + tables + frontier (peak).
     *  Inside a worker's partial stats: worker-owned bytes only. */
    size_t peakVisitedBytes = 0;
    /** Arena-owned bytes of the shared tables/memos, counted once. */
    size_t tableBytes = 0;
    /** Peak resident set size of the whole process (ru_maxrss). */
    size_t processPeakRssBytes = 0;
    /** Tau successors pruned by the footprint reduction. */
    size_t tauMovesSkipped = 0;
    /**
     * Configurations whose expansion collapsed to a singleton ample
     * set (their sibling thread steps, tau moves, and crash steps
     * were all pruned). A pure function of the reduced search graph,
     * so identical for every worker count and frontier policy; the
     * scaling bench's `reduction` config series measures the pruning
     * it buys.
     */
    size_t ampleSkipped = 0;
    /**
     * Crash steps pruned by the crash-step ample condition: the
     * crash's state effect was provably invisible to every live
     * thread's remaining code, so its subtree's outcomes are a
     * subset of the retained branch's. Schedule-invariant.
     */
    size_t crashAmpleSkipped = 0;
    /**
     * Thread or crash steps suppressed because they were asleep (an
     * already-explored sibling ordering covers them). Counted per
     * expansion, and a sleep-word merge can re-expand a
     * configuration, so treat as approximate under Reduction::Sleep
     * and above (the node/edge fixpoint itself is deterministic;
     * gate on outcomes and configsInterned, not on this).
     */
    size_t sleepSetSkipped = 0;
    /**
     * Successor configurations whose machine-symmetry canonicalization
     * was not the identity — each one merged an orbit of
     * configurations identical up to renaming interchangeable
     * machines. Schedule-invariant.
     */
    size_t symmetryMerged = 0;
    /** Steal attempts this worker made on other shards' frontiers. */
    size_t stealsAttempted = 0;
    /** Steal attempts that came back with at least one config. */
    size_t stealsSucceeded = 0;
    /**
     * Configurations the frontier pushed out to per-shard spill
     * files under memory pressure (out-of-core mode; each spilled
     * config is re-admitted from disk before the search can drain).
     * Scheduling-dependent, like the steal counters: excluded from
     * the deterministic report projection.
     */
    size_t spilledConfigs = 0;
    /** Bytes written to frontier spill files (cumulative). */
    size_t spillBytes = 0;
    /** Cross-shard inbox handoff batches this worker flushed (each
     *  batch moves a block of configs under one lock acquisition). */
    size_t inboxBatches = 0;
    /** Snapshots written at quiescent barriers during this run. */
    size_t checkpointsWritten = 0;
    /** Wall-clock seconds inside the checker. */
    double seconds = 0.0;

    /**
     * Fold another worker's partial stats into this one: per-worker
     * counters (configs visited/interned, tau skips, worker-owned
     * peak bytes) add; shared-table quantities (states/frames
     * interned, tableBytes, process peak) and concurrent wall-clock
     * take the max.
     */
    void merge(const SearchStats &other);
};

/** Peak resident set size of this process, in bytes (getrusage). */
size_t processPeakRssBytes();

/** A typed counterexample: a label trace and/or a description. */
struct Counterexample
{
    /** The violating visible trace (refinement, inclusion). */
    std::vector<model::Label> trace;
    /** Human-readable context (offending state, blocked index, ...). */
    std::string description;

    bool empty() const { return trace.empty() && description.empty(); }
    std::string describe() const;
};

/** A final outcome of one complete explorer execution. */
struct Outcome
{
    /** Final register file of each thread; crashed threads keep the
     *  registers they had when their machine failed. */
    std::vector<std::vector<Value>> regs;
    /** Bit i set when thread i's machine crashed before it finished. */
    uint32_t crashedThreads = 0;

    bool operator<(const Outcome &other) const;
    bool operator==(const Outcome &other) const;
    std::string describe() const;
};

/**
 * The uniform result of any checking request. Checkers fill the
 * fields that apply: the explorer reports outcomes, refinement and
 * inclusion report a counterexample on failure; everyone reports the
 * verdict, truncation, and SearchStats.
 */
struct CheckReport
{
    CheckVerdict verdict = CheckVerdict::Pass;
    /** Reachable final outcomes (explorer; empty elsewhere). When
     *  truncated, a still-valid subset of the reachable set. */
    std::set<Outcome> outcomes;
    /** True when a budget or bound stopped the search early. */
    bool truncated = false;
    /**
     * True when the wall-clock budget (CheckRequest::timeBudgetMs)
     * specifically cut the search; implies truncated. Callers that
     * tolerate an expected bound cut (refinement's depth bound) must
     * still treat a timed-out run as unfinished.
     */
    bool timedOut = false;
    SearchStats stats;
    /**
     * Wall-clock milliseconds inside the checker, measured once at
     * report finalization (finalizeReportTiming). Telemetry, not
     * identity: excluded from serializeReport and zeroed by the
     * drivers' `--stable-json` modes.
     */
    double wallMs = 0.0;
    /** Populated when verdict == Fail. */
    Counterexample counterexample;

    /** One-line summary: verdict, counterexample, key stats. */
    std::string describe() const;
};

/**
 * Stamp a finished report with its timing and memory footprint:
 * `stats.seconds`, `wallMs`, and `stats.processPeakRssBytes` all
 * derive from this one measurement point, so drivers and benches
 * never re-time around check() themselves.
 */
void finalizeReportTiming(CheckReport &report,
                          std::chrono::steady_clock::time_point t0);

// ===================================================================
// Packed configurations, visited set, frontier
// ===================================================================

/**
 * One packed search configuration: every component is either an
 * interned id or a fixed-width bitfield word, so the visited set and
 * the frontier hold 32-byte PODs instead of multi-vector objects.
 * The field names follow the explorer's use; other checkers may
 * repurpose the slots (documented at their packing site — refinement
 * packs {spec frame, impl frame, trace node, depth, budgets} into
 * {state, regs, pc, alive, crash}).
 */
struct PackedConfig
{
    StateId state = 0;   //!< interned model::State (or frame id)
    uint32_t regs = 0;   //!< interned flat register file (all threads)
    uint64_t pc = 0;     //!< bitsPerPc bits per thread
    uint32_t alive = 0;  //!< bit t set while thread t's machine is up
    /**
     * Sleep word (Reduction::Sleep and above): low 16 bits sleep
     * thread t's next step, high 16 bits sleep node n's crash step.
     * A sleeping step is covered by an already-explored sibling
     * ordering and is not expanded until a dependent step wakes it.
     * Search *metadata*, not identity: the visited set keys on the
     * core configuration and intersects the sleep words of every
     * arrival (FlatConfigSet::insertOrFind), re-expanding only when
     * the stored word strictly shrinks — so each core configuration
     * is stored once and the fixpoint (nodes, final sleep words,
     * explored edges) is schedule-invariant. Always 0 below
     * Reduction::Sleep and in every checker that repurposes the
     * slots (refinement).
     */
    uint32_t sleep = 0;
    uint64_t crash = 0;  //!< bitsPerBudget bits of crash budget per node

    /** Identity excludes the sleep word (see its comment). */
    bool operator==(const PackedConfig &other) const
    {
        return state == other.state && regs == other.regs &&
               pc == other.pc && alive == other.alive &&
               crash == other.crash;
    }
};

static_assert(sizeof(PackedConfig) == 32,
              "visited-set entries are expected to pack to 32 bytes");

/** Mixed content hash of a packed configuration. */
uint64_t hashPacked(const PackedConfig &c);

/**
 * Open-addressed set of PackedConfigs (linear probing, power-of-two
 * capacity, no deletion). One instance per shard worker; never
 * shared across threads.
 *
 * Occupancy lives in a separate heap-resident bitmap (1 bit/slot)
 * rather than a sentinel value inside the slots. That is what lets
 * the slot array itself be arena-mapped in out-of-core mode: probes
 * over empty slots consult only the bitmap and never fault a cold
 * (or never-written) mapped page, and fresh zero file pages need no
 * sentinel fill pass.
 */
class FlatConfigSet
{
  public:
    FlatConfigSet();
    ~FlatConfigSet();
    FlatConfigSet(const FlatConfigSet &) = delete;
    FlatConfigSet &operator=(const FlatConfigSet &) = delete;

    bool contains(const PackedConfig &c) const;

    /** Stored entry equal to `c` (sleep word excluded), or null.
     *  Same mutation/invalidation contract as insertOrFind. */
    PackedConfig *find(const PackedConfig &c);

    /** Insert; returns true when the config was not present. */
    bool insert(const PackedConfig &c);

    /**
     * Insert `c`, or find the stored entry equal to it (identity
     * excludes the sleep word). Returns the stored entry; the caller
     * may mutate its sleep word in place (sleep-word intersection on
     * path convergence). The pointer is invalidated by the next
     * insert. Single-writer: only the owning shard touches its set.
     */
    PackedConfig *insertOrFind(const PackedConfig &c,
                               bool *inserted);

    size_t size() const { return count_; }

    /** Heap/arena bytes of the slots plus the occupancy bitmap. */
    size_t bytes() const
    {
        return capacity_ * sizeof(PackedConfig) +
               bits_.capacity() * sizeof(uint64_t);
    }

    /**
     * Visit every stored config (arbitrary order). Checkpointing
     * serializes the visited set through this; sleep words ride
     * along inside the entries.
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < capacity_; ++i)
            if (occupied(i))
                fn(slots_[i]);
    }

    /** Drop every entry and shrink back to the initial capacity. */
    void clear();

  private:
    bool occupied(size_t i) const
    {
        return (bits_[i >> 6] >> (i & 63)) & 1;
    }
    void setOccupied(size_t i)
    {
        bits_[i >> 6] |= uint64_t{1} << (i & 63);
    }
    void allocate(size_t capacity);
    void release();
    void grow();

    PackedConfig *slots_ = nullptr;
    size_t capacity_ = 0;
    size_t mask_ = 0;
    size_t count_ = 0;
    std::vector<uint64_t> bits_; //!< occupancy, 1 bit per slot
    bool mapped_ = false;        //!< slots_ is arena-mapped
    SpillArena *arena_ = nullptr;
};

/**
 * Two-tier visited set for out-of-core search: a bounded in-RAM
 * "hot" FlatConfigSet plus immutable "cold" runs on a SpillFile.
 *
 * Resident memory per stored configuration must be sublinear for
 * peak RSS to stay flat while the explored set grows — an mmap'd
 * hash table does not get there, because dedup probes are uniform
 * over the slots and refault every page between sheds. Instead,
 * when the hot table reaches its byte budget its entries are sorted
 * by content hash and appended to the spill file as one run, and
 * only a 4-byte hash prefix per entry stays on the heap (sorted, so
 * a probe is a binary search per run). Confirming a prefix match
 * reads the 32-byte entry back with pread(2): the page cache absorbs
 * those reads without charging this process's resident set, which is
 * the whole trick. Cold sleep-word merges write the updated entry
 * back in place with pwrite; hashes exclude the sleep word, so run
 * order is unaffected.
 *
 * Exactness: probes always confirm against the full stored entry,
 * so dedup decisions are identical to FlatConfigSet's — hash
 * collisions cost a read, never an answer. Without configureSpill()
 * this is a zero-overhead passthrough to FlatConfigSet.
 *
 * Single-owner, like the hot table it wraps.
 */
class VisitedSet
{
  public:
    /** Admission outcome of one offered configuration. */
    enum class Admit
    {
        Inserted,   //!< genuinely new; caller counts + expands it
        Readmitted, //!< known, but the sleep-word merge shrank the
                    //!< stored word; re-expand with the merged word
        Duplicate,  //!< known and the stored word already covers it
    };

    /** Enable the cold tier: flush the hot table to `file` whenever
     *  it exceeds `hotBudgetBytes` of entries. Call before any
     *  insert; `file` must outlive this set. */
    void configureSpill(SpillFile *file, size_t hotBudgetBytes);

    bool contains(const PackedConfig &c) const;

    /** Insert; returns true when the config was not present. */
    bool insert(const PackedConfig &c);

    /**
     * The explorer's admission rule in one step: insert `c` if new,
     * otherwise intersect sleep words with the stored entry (hot:
     * in place; cold: pwrite-back). On Readmitted, c.sleep carries
     * the merged word out.
     */
    Admit admit(PackedConfig &c);

    size_t size() const { return hot_.size() + coldCount_; }

    /** Heap/arena bytes (cold file bytes excluded: not resident). */
    size_t bytes() const
    {
        size_t b = hot_.bytes();
        for (const Run &r : runs_)
            b += r.prefixes.capacity() * sizeof(uint32_t);
        return b;
    }

    uint64_t spilledEntries() const { return coldCount_; }
    uint64_t spilledBytes() const
    {
        return coldCount_ * sizeof(PackedConfig);
    }

    /** Visit every stored config (arbitrary order), cold runs
     *  first. Cold entries are streamed back in chunks. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        PackedConfig buf[256];
        for (const Run &r : runs_) {
            size_t left = r.prefixes.size(), i = 0;
            while (left > 0) {
                size_t n = left < 256 ? left : 256;
                if (!spill_->readAt(r.base +
                                        i * sizeof(PackedConfig),
                                    buf, n * sizeof(PackedConfig)))
                    CXL0_ASSERT(false,
                                "visited spill read failed");
                for (size_t k = 0; k < n; ++k)
                    fn(buf[k]);
                i += n;
                left -= n;
            }
        }
        hot_.forEach(fn);
    }

  private:
    /** One immutable flushed run: entries at file offset `base`,
     *  sorted by content hash; `prefixes` holds the top 32 bits of
     *  each hash in that order (sorted too, since it is a monotone
     *  projection of a sorted sequence). Half the resident cost of
     *  full hashes; a prefix collision just costs one extra pread
     *  confirm, never a wrong answer. */
    struct Run
    {
        uint64_t base = 0;
        std::vector<uint32_t> prefixes;
    };

    /** Cold lookup: run index + entry index, or found=false. */
    struct ColdRef
    {
        bool found = false;
        size_t run = 0;
        size_t idx = 0;
        PackedConfig entry;
    };
    ColdRef probeCold(const PackedConfig &c) const;
    void maybeFlush();

    FlatConfigSet hot_;
    SpillFile *spill_ = nullptr; //!< null = in-memory only
    size_t hotBudgetBytes_ = 0;
    size_t coldCount_ = 0;
    std::vector<Run> runs_;
};

/**
 * Open-addressed (key -> deepest remaining depth) memo for the
 * depth-bounded searches: a revisit of `key` with remaining depth no
 * greater than the recorded one cannot reach anything new and is
 * pruned. One probe-loop template serves both the frame-interned
 * refinement search (Key = the frame-pair key) and the deep-copy
 * reference search (Key = a 64-bit frame hash). Not thread-safe: one
 * instance per shard worker.
 */
template <typename Key, typename HashFn>
class FlatDepthMap
{
  public:
    enum class Outcome
    {
        Inserted, //!< fresh key recorded
        Raised,   //!< key existed with a shallower remaining depth
        Pruned,   //!< key existed at least this deep — skip expansion
        Rejected, //!< fresh key, but allow_insert was false (budget)
    };

    /** depthOf() result when the key was never recorded. */
    static constexpr uint32_t kNoDepth = static_cast<uint32_t>(-1);

    FlatDepthMap()
        : keys_(kInitialSlots), depths_(kInitialSlots, kEmptyDepth),
          mask_(kInitialSlots - 1)
    {
    }

    /**
     * The one probe loop: find `key`; prune or raise when present,
     * insert when absent and allowed. `depth` is the *remaining*
     * search depth (must stay below 2^32 - 1).
     */
    Outcome insertOrRaise(const Key &key, uint32_t depth,
                          bool allow_insert)
    {
        size_t i = HashFn{}(key)&mask_;
        while (depths_[i] != kEmptyDepth) {
            if (keys_[i] == key) {
                if (depths_[i] >= depth)
                    return Outcome::Pruned;
                depths_[i] = depth;
                return Outcome::Raised;
            }
            i = (i + 1) & mask_;
        }
        if (!allow_insert)
            return Outcome::Rejected;
        keys_[i] = key;
        depths_[i] = depth;
        ++count_;
        // Keep the load factor below ~0.7 so probes stay short.
        if ((count_ + 1) * 10 > keys_.size() * 7)
            grow();
        return Outcome::Inserted;
    }

    /**
     * The remaining depth recorded for `key`, or kNoDepth when
     * absent. Once a search has drained, the recorded value is the
     * *maximal* remaining depth the key was ever reached with — an
     * order-independent quantity (every deeper rediscovery raises
     * it), which is what makes post-hoc filtering on it
     * deterministic.
     */
    uint32_t depthOf(const Key &key) const
    {
        size_t i = HashFn{}(key)&mask_;
        while (depths_[i] != kEmptyDepth) {
            if (keys_[i] == key)
                return depths_[i];
            i = (i + 1) & mask_;
        }
        return kNoDepth;
    }

    size_t size() const { return count_; }

    size_t bytes() const
    {
        return keys_.capacity() * sizeof(Key) +
               depths_.capacity() * sizeof(uint32_t);
    }

  private:
    static constexpr size_t kInitialSlots = 16;
    static constexpr uint32_t kEmptyDepth = kNoDepth;

    void grow()
    {
        std::vector<Key> keys(keys_.size() * 2);
        std::vector<uint32_t> depths(keys.size(), kEmptyDepth);
        size_t mask = keys.size() - 1;
        for (size_t j = 0; j < keys_.size(); ++j) {
            if (depths_[j] == kEmptyDepth)
                continue;
            size_t i = HashFn{}(keys_[j]) & mask;
            while (depths[i] != kEmptyDepth)
                i = (i + 1) & mask;
            keys[i] = keys_[j];
            depths[i] = depths_[j];
        }
        keys_ = std::move(keys);
        depths_ = std::move(depths);
        mask_ = mask;
    }

    std::vector<Key> keys_;
    std::vector<uint32_t> depths_;
    size_t mask_;
    size_t count_ = 0;
};

/**
 * The set of configurations awaiting expansion, behind a policy seam:
 * DFS uses a contiguous stack, BFS a deque. One instance per shard;
 * ShardedFrontier composes N of them with handoff inboxes.
 *
 * Out-of-core mode (configureSpill): when the in-memory part grows
 * past a byte budget, the cold half — the same end stealHalf takes —
 * is serialized to the shard's spill file as one block and
 * re-admitted (oldest block first) once the hot part drains. Spilling
 * only *reorders* expansion: every spilled config re-enters this
 * same frontier before the search can drain (size() counts it
 * throughout, so the termination barrier is untouched), and
 * admission stayed hash-pinned when it was first queued — so the
 * reduced graph and outcome set are unchanged, exactly as for work
 * stealing.
 */
class ConfigFrontier
{
  public:
    explicit ConfigFrontier(
        FrontierPolicy policy = FrontierPolicy::DepthFirst)
        : policy_(policy)
    {
    }

    /**
     * Enable spilling: when the in-memory part exceeds
     * `budgetBytes`, the cold half moves to `file` (owned by the
     * caller, same lifetime as this frontier). Call before the
     * search starts.
     */
    void configureSpill(SpillFile *file, size_t budgetBytes)
    {
        spill_ = file;
        spillBudgetBytes_ = budgetBytes;
    }

    void push(const PackedConfig &c)
    {
        if (policy_ == FrontierPolicy::DepthFirst)
            stack_.push_back(c);
        else
            queue_.push_back(c);
        if (spill_ != nullptr)
            maybeSpill();
    }

    bool empty() const
    {
        return memSize() == 0 && spilledNow_ == 0;
    }

    /** Queued configs, spilled blocks included. */
    size_t size() const { return memSize() + spilledNow_; }

    PackedConfig pop();

    /**
     * Move roughly half of the queued configurations (at least one;
     * requires a nonempty frontier) into `out`, taking them from the
     * *cold* end — the entries farthest from being popped by the
     * owner: the bottom of the DFS stack (the coarsest, oldest
     * subtrees), the back of the BFS queue. The thief pushes them
     * into its own frontier; since outcome sets are expansion-order
     * independent, the resulting reshuffle is invisible in reports.
     * O(stolen) while the victim's shard lock is held: the DFS
     * stack's stolen prefix is only advanced past (`base_`) and
     * compacted amortized-O(1), never shifted per steal.
     */
    size_t stealHalf(std::vector<PackedConfig> &out);

    /** Resident bytes (approximate for the deque; excludes spilled
     *  blocks — that is the point of spilling them). */
    size_t bytes() const
    {
        return policy_ == FrontierPolicy::DepthFirst
                   ? stack_.capacity() * sizeof(PackedConfig)
                   : queue_.size() * sizeof(PackedConfig);
    }

    /** Configs ever spilled to the file (cumulative). */
    size_t spilledConfigs() const { return spilledTotal_; }

    /** Bytes ever written to the spill file (cumulative). */
    size_t spillBytes() const { return spillBytesTotal_; }

    /** Configs currently sitting in spilled blocks. */
    size_t spilledNow() const { return spilledNow_; }

    /**
     * Visit every queued config in a deterministic cold-to-hot
     * order: spilled blocks oldest first, then the in-memory part
     * from the cold end to the hot end. The checkpoint serializer
     * walks this and the restorer re-pushes the sequence; for a DFS
     * frontier that rebuilds the identical stack. Expansion order is
     * immaterial to results either way (admission is hash-pinned and
     * order-independent), so a restored search reaches the same
     * reduced graph regardless of policy.
     */
    template <typename Fn>
    void forEachQueued(Fn &&fn) const
    {
        std::vector<PackedConfig> buf;
        for (const SpillBlock &b : blocks_) {
            buf.resize(b.count);
            bool ok = spill_->readAt(b.offset, buf.data(),
                                     b.count * sizeof(PackedConfig));
            CXL0_ASSERT(ok, "spill block unreadable");
            for (const PackedConfig &c : buf)
                fn(c);
        }
        if (policy_ == FrontierPolicy::DepthFirst) {
            for (size_t i = base_; i < stack_.size(); ++i)
                fn(stack_[i]);
        } else {
            // BFS pops the front; the back is the cold end, so
            // cold-to-hot order walks the queue back-to-front.
            for (size_t i = queue_.size(); i > 0; --i)
                fn(queue_[i - 1]);
        }
    }

  private:
    struct SpillBlock
    {
        uint64_t offset;
        size_t count;
    };

    size_t memSize() const
    {
        return policy_ == FrontierPolicy::DepthFirst
                   ? stack_.size() - base_
                   : queue_.size();
    }

    /** Spill the cold half when the in-memory part is over budget. */
    void maybeSpill();

    /** Re-admit the oldest spilled block into the in-memory part. */
    void refillFromSpill();

    FrontierPolicy policy_;
    std::vector<PackedConfig> stack_; //!< live entries: [base_, end)
    size_t base_ = 0;                 //!< stolen prefix of stack_
    std::deque<PackedConfig> queue_;
    SpillFile *spill_ = nullptr;      //!< null = in-memory only
    size_t spillBudgetBytes_ = 0;
    std::deque<SpillBlock> blocks_;   //!< FIFO: oldest block first
    size_t spilledNow_ = 0;
    size_t spilledTotal_ = 0;
    size_t spillBytesTotal_ = 0;
    std::vector<PackedConfig> spillBuf_; //!< block staging buffer
};

/**
 * N per-shard frontiers with cross-shard handoff, work stealing, and
 * termination detection — the spine of every parallel search here.
 *
 * Ownership split: *admission* (dedup, budgets, memos) is pinned to a
 * configuration's hash-owner shard — a successor owned by another
 * shard is send()t to that shard's mutex-guarded inbox, and only the
 * owner drains its inbox through the caller's admission filter.
 * *Expansion* is not pinned: once a configuration has been admitted
 * into a local frontier, any idle worker may steal it and generate
 * its successors (which again route to *their* owners for admission).
 * Admission-exactness is what makes this sound: whichever worker
 * expands a configuration, each distinct configuration is admitted
 * (and therefore expanded) exactly once, so the union of all workers'
 * searches is the same reduced graph the sequential search walks.
 *
 * Stealing: when worker w's frontier and inbox are both empty, it
 * scans the other shards round-robin and takes roughly half of the
 * first nonempty frontier it finds (the cold end — see
 * ConfigFrontier::stealHalf), pushing the loot into its own frontier.
 * Each shard's frontier is guarded by its shard mutex; a thief never
 * holds two shard locks at once. Per-worker attempt/success counters
 * are read back through stealCounters() after the drain.
 *
 * Termination: `pending_` counts configurations that are queued
 * anywhere or currently being expanded. Every push/send increments
 * it; the worker calls done() exactly once per popped (or rejected)
 * configuration after its successors are enqueued — so pending_ can
 * only reach zero when no work exists and none can appear. The
 * worker that decrements it to zero wakes every sleeper. Stealing
 * moves queued work between shards without touching pending_, so the
 * barrier is unchanged. A sleeping worker additionally wakes when
 * `stealable_` (the count of configs sitting in local frontiers)
 * becomes nonzero while it sleeps, so work pushed to a busy shard's
 * deep frontier reaches idle workers instead of idling them.
 *
 * With one shard this degenerates to exactly the single frontier the
 * sequential searches always used: same push/pop order, no steals,
 * no contention on the shard mutex.
 *
 * Quiescent pause (checkpointing): configurePause() arms a
 * rendezvous, requestPause() asks every worker to park at its next
 * pop() entry — a point where its previous configuration is fully
 * expanded and its outbox is flushed. When the last worker arrives,
 * the search holds still (every un-expanded config sits in a
 * frontier, spill block, or inbox; pending() equals their count) and
 * the arriver runs the registered callback — the checkpoint writer —
 * before releasing everyone. Workers that leave the loop for good
 * call workerExit() so a rendezvous never waits on them.
 */
class ShardedFrontier
{
  public:
    ShardedFrontier(size_t nshards, FrontierPolicy policy);

    size_t shards() const { return shards_.size(); }

    /** Owning shard of a configuration hash (multiply-shift). */
    size_t ownerOf(uint64_t hash) const
    {
        return static_cast<size_t>(((hash >> 32) * shards_.size()) >>
                                   32);
    }

    /** Cross-shard handoff; any thread. Counts as pending work. */
    void send(size_t shard, const PackedConfig &c);

    /**
     * Steal-aware batched handoff: buffer `c` in worker w's
     * per-destination outbox and deliver the block under a single
     * lock acquisition once it fills (or at the next flush point —
     * pop() flushes before sleeping and pausing, so no config can
     * hide in an outbox while its owner starves). Counts as pending
     * work immediately, so the termination barrier is exact.
     */
    void sendBuffered(size_t w, size_t shard, const PackedConfig &c);

    /** Deliver every block worker w still buffers (worker w only). */
    void flushOutbox(size_t w);

    /** Handoff blocks worker w has flushed so far (worker w or
     *  post-join). */
    size_t inboxBatchCount(size_t w) const
    {
        return shards_[w]->inboxBatches;
    }

    /** Push an admitted config onto worker w's own frontier; only
     *  worker w (or the driver before the workers start). Counts as
     *  pending work. */
    void pushLocal(size_t w, const PackedConfig &c);

    /** Attach shard w's frontier spill file (before workers start). */
    void configureSpill(size_t w, SpillFile *file, size_t budgetBytes)
    {
        shards_[w]->frontier.configureSpill(file, budgetBytes);
    }

    /** Shard w's cumulative (spilledConfigs, spillBytes). */
    std::pair<size_t, size_t> spillCounters(size_t w) const
    {
        Shard &sh = *shards_[w];
        std::lock_guard<std::mutex> lock(sh.m);
        return {sh.frontier.spilledConfigs(),
                sh.frontier.spillBytes()};
    }

    /**
     * Arm the quiescent-pause rendezvous: exactly `nworkers` workers
     * will run the pop() loop and each will call workerExit() when
     * it leaves for good. After requestPause(), every worker parks
     * at its next pop() entry (a popped config is always fully
     * expanded first); the last arriver runs `cb` while the whole
     * search is quiescent — every queued config is in a frontier,
     * spill block, or inbox, and pending() equals their total.
     */
    void configurePause(size_t nworkers, std::function<void()> cb)
    {
        activeWorkers_.store(nworkers, std::memory_order_relaxed);
        pauseCb_ = std::move(cb);
    }

    /** Ask every worker to rendezvous at a quiescent point. */
    void requestPause()
    {
        pausePending_.store(true, std::memory_order_release);
        wakeAll();
    }

    bool pauseRequested() const
    {
        return pausePending_.load(std::memory_order_acquire);
    }

    /**
     * Worker w makes no further pop()/done() calls. Flushes its
     * outbox and re-arms a pending rendezvous so the remaining
     * workers can complete it without w. Required (once per worker)
     * when configurePause was used; harmless otherwise.
     */
    void workerExit(size_t w);

    /**
     * Leader-only at a quiescent pause (or before workers start):
     * every queued config of shard s's frontier, spilled blocks
     * included, cold-to-hot.
     */
    template <typename Fn>
    void forEachQueued(size_t s, Fn &&fn) const
    {
        Shard &sh = *shards_[s];
        std::lock_guard<std::mutex> lock(sh.m);
        sh.frontier.forEachQueued(fn);
    }

    /** Leader-only at a quiescent pause: shard s's undelivered inbox
     *  configs (admission still ahead of them). */
    template <typename Fn>
    void forEachInbox(size_t s, Fn &&fn) const
    {
        Shard &sh = *shards_[s];
        std::lock_guard<std::mutex> lock(sh.m);
        for (const PackedConfig &c : sh.inbox)
            fn(c);
    }

    /**
     * Next configuration for worker w: its own frontier first, then
     * its inbox (arrivals pass through `admit` — dedup + budget —
     * before entering the frontier; a rejected arrival is accounted
     * done automatically), then a steal from another shard's
     * frontier (already admitted there; `admit` is NOT re-run).
     * Blocks until work arrives; returns false on global termination
     * or stop. Every true return must be matched by one done() call.
     */
    template <typename Admit>
    bool pop(size_t w, PackedConfig &out, Admit &&admit)
    {
        Shard &sh = *shards_[w];
        for (;;) {
            if (stopped())
                return false;
            // A pause request parks the worker here — between
            // configurations, with its outbox flushed — so when the
            // last worker arrives the search is quiescent.
            if (pausePending_.load(std::memory_order_acquire))
                pausePoint(w);
            {
                std::unique_lock<std::mutex> lock(sh.m);
                if (!sh.inbox.empty() &&
                    (sh.frontier.empty() ||
                     sh.inbox.size() >= kInboxDrain)) {
                    sh.drain.clear();
                    sh.drain.swap(sh.inbox);
                } else if (!sh.frontier.empty()) {
                    out = sh.frontier.pop();
                    stealable_.fetch_sub(1,
                                         std::memory_order_relaxed);
                    return true;
                }
            }
            if (!sh.drain.empty()) {
                if (sh.ring != nullptr)
                    sh.ring->instant("inbox-drain", sh.drain.size());
                // Admit outside the lock (admission touches the
                // worker's own tables), then publish the survivors.
                size_t kept = 0;
                // Non-const: admission may rewrite the sleep word
                // to the merged (intersected) value before the
                // config re-enters the frontier.
                for (PackedConfig &c : sh.drain) {
                    if (admit(c))
                        sh.drain[kept++] = c;
                    else
                        done();
                }
                sh.drain.resize(kept);
                if (kept)
                    pushMany(sh, sh.drain);
                sh.drain.clear();
                continue;
            }
            if (shards_.size() > 1 && trySteal(w))
                continue;
            // Out of local work: deliver anything still buffered
            // before sleeping — a config parked in this outbox would
            // otherwise keep pending_ > 0 while its owner starves.
            flushOutbox(w);
            {
                std::unique_lock<std::mutex> lock(sh.m);
                if (!sh.inbox.empty())
                    continue;
                if (pending_.load(std::memory_order_acquire) == 0)
                    return false;
                sleepers_.fetch_add(1);
                obs::ScopedSpan sleepSpan(sh.ring, "sleep");
                sh.cv.wait(lock, [&] {
                    return !sh.inbox.empty() ||
                           stealable_.load() > 0 ||
                           pending_.load(
                               std::memory_order_acquire) == 0 ||
                           stopped() ||
                           pausePending_.load(
                               std::memory_order_acquire);
                });
                sleepers_.fetch_sub(1);
            }
        }
    }

    /** One popped configuration is fully expanded (or rejected). */
    void done()
    {
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            wakeAll();
    }

    /** Abort the search everywhere (violation found, fail fast). */
    void stopAll();

    bool stopped() const
    {
        return stop_.load(std::memory_order_acquire);
    }

    /** Worker w's (attempted, succeeded) steal counts so far. Only
     *  meaningful to read from worker w or after the workers join. */
    std::pair<size_t, size_t> stealCounters(size_t w) const
    {
        return {shards_[w]->stealsAttempted,
                shards_[w]->stealsSucceeded};
    }

    /** Resident bytes of shard w's frontier + inbox. */
    size_t bytes(size_t w) const;

    /**
     * Attach worker w's telemetry ring (nullptr detaches). Call
     * before the workers start (or from worker w itself): the ring
     * is single-writer and only worker w's pop path touches it.
     * Telemetry only — recorded events never steer the search.
     */
    void setTraceRing(size_t w, obs::TraceRing *ring)
    {
        shards_[w]->ring = ring;
    }

    /** Configurations queued or in flight (the termination count). */
    size_t pending() const
    {
        return pending_.load(std::memory_order_relaxed);
    }

    /** Shard w's queued depth (frontier + inbox); telemetry only. */
    size_t depth(size_t w) const
    {
        Shard &sh = *shards_[w];
        std::lock_guard<std::mutex> lock(sh.m);
        return sh.frontier.size() + sh.inbox.size();
    }

  private:
    struct alignas(64) Shard
    {
        explicit Shard(FrontierPolicy policy) : frontier(policy) {}

        std::mutex m;
        std::condition_variable cv;
        std::vector<PackedConfig> inbox; //!< guarded by m
        ConfigFrontier frontier;         //!< guarded by m (stealing)
        std::vector<PackedConfig> drain; //!< owner-thread only
        std::vector<PackedConfig> loot;  //!< owner-thread only
        size_t stealsAttempted = 0;      //!< owner-thread only
        size_t stealsSucceeded = 0;      //!< owner-thread only
        /** Per-destination handoff blocks; owner-thread only. */
        std::vector<std::vector<PackedConfig>> outbox;
        size_t outboxBuffered = 0;       //!< owner-thread only
        size_t inboxBatches = 0;         //!< owner-thread only
        obs::TraceRing *ring = nullptr;  //!< owner-thread only
    };

    /** Configs per outbox block before an automatic flush. */
    static constexpr size_t kSendBatch = 32;

    /** Inbox entries that force a drain even while the owner's own
     *  frontier still has work. Without this, a shard whose frontier
     *  never empties (the common case in a long spilling run)
     *  accumulates every cross-shard arrival in its inbox vector —
     *  unbounded resident growth the frontier's spill budget cannot
     *  see. Draining pushes survivors through admission into the
     *  frontier, whose cold end does spill. */
    static constexpr size_t kInboxDrain = 4096;

    /** Push admitted configs into `sh`'s frontier (already counted
     *  pending) and wake sleepers that could steal them. */
    void pushMany(Shard &sh, const std::vector<PackedConfig> &cs);

    /** Steal up to half of some other shard's frontier into w's. */
    bool trySteal(size_t w);

    /** Deliver worker sh's block for `dest` (one lock, one batch). */
    void flushDest(Shard &sh, size_t dest);

    /** Rendezvous for worker w at a requested pause. */
    void pausePoint(size_t w);

    void wakeAll();

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<size_t> pending_{0};
    /** Configs currently sitting in local frontiers (any shard). */
    std::atomic<size_t> stealable_{0};
    /** Workers blocked in pop(); a push with sleepers wakes all. */
    std::atomic<size_t> sleepers_{0};
    std::atomic<bool> stop_{false};

    /** Quiescent-pause rendezvous (configurePause/requestPause). */
    std::mutex pauseM_;
    std::condition_variable pauseCv_;
    std::atomic<bool> pausePending_{false};
    std::atomic<size_t> activeWorkers_{0};
    size_t pauseArrived_ = 0;  //!< guarded by pauseM_
    uint64_t pauseEpoch_ = 0;  //!< guarded by pauseM_
    std::function<void()> pauseCb_;
};

/**
 * A wall-clock deadline for graceful time-budget truncation. Armed
 * from CheckRequest::timeBudgetMs (0 leaves it unarmed and expired()
 * constant false). Workers poll expired() between expansions — one
 * steady_clock read per poll, so callers amortize it over a few
 * hundred configurations.
 */
class Deadline
{
  public:
    explicit Deadline(uint64_t budget_ms)
    {
        if (budget_ms > 0) {
            armed_ = true;
            at_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(budget_ms);
        }
    }

    bool expired() const
    {
        return armed_ && std::chrono::steady_clock::now() >= at_;
    }

  private:
    bool armed_ = false;
    std::chrono::steady_clock::time_point at_;
};

/**
 * Run `fn(w)` for w in [0, nworkers): worker 0 inline on the calling
 * thread, the rest on std::threads, joined before returning. One
 * worker spawns nothing — the shared scaffold of every sharded
 * driver here (a panic inside a spawned worker still terminates; the
 * drivers validate all inputs before fanning out).
 */
void runOnWorkers(size_t nworkers,
                  const std::function<void(size_t)> &fn);

/**
 * Fixed-width per-index bitfields packed into one 64-bit word: the
 * explorer's pc and crash-budget words and refinement's crash-budget
 * word all encode through this.
 */
class BitfieldWord
{
  public:
    BitfieldWord() = default;
    explicit BitfieldWord(unsigned bits_per_field)
        : bits_(bits_per_field),
          mask_(bits_per_field >= 64 ? ~0ull
                                     : (1ull << bits_per_field) - 1)
    {
    }

    unsigned bits() const { return bits_; }

    /** Whether `fields` entries fit into one word. */
    bool fits(size_t fields) const
    {
        return bits_ == 0 || fields * bits_ <= 64;
    }

    uint64_t get(uint64_t word, size_t i) const
    {
        return bits_ == 0 ? 0 : (word >> (i * bits_)) & mask_;
    }

    uint64_t set(uint64_t word, size_t i, uint64_t v) const
    {
        if (bits_ == 0)
            return word;
        uint64_t m = mask_ << (i * bits_);
        return (word & ~m) | (v << (i * bits_));
    }

  private:
    unsigned bits_ = 0;
    uint64_t mask_ = 0;
};

// ===================================================================
// ModelContext / ShardEngine / SearchEngine
// ===================================================================

/**
 * The shared tier of a search: the model reference, the concurrent
 * interning tables, and the once-per-state successor memos. One per
 * (model, search); every ShardEngine of that search points here.
 *
 * Memo discipline: each memo slot is an atomic that starts unset and
 * is published exactly once with a value that is a pure function of
 * shared content (the successor *states* of an interned state do not
 * depend on which worker asks). Two workers racing on the same slot
 * both compute the same answer; the loser's duplicate work is the
 * only cost, and the winner's publication carries release/acquire
 * ordering so the interned content behind the ids is visible.
 */
class ModelContext
{
  public:
    explicit ModelContext(const Cxl0Model &model);
    ~ModelContext();

    ModelContext(const ModelContext &) = delete;
    ModelContext &operator=(const ModelContext &) = delete;

    const Cxl0Model &model() const { return model_; }
    model::StateTable &states() { return states_; }
    const model::StateTable &states() const { return states_; }
    model::FrameTable &frames() { return frames_; }
    const model::FrameTable &frames() const { return frames_; }

    /** Arena-owned bytes of the tables and memos (shared; report
     *  once per search, not once per worker). */
    size_t bytes() const;

    /** Fill the shared-table fields of a SearchStats. */
    void fillStats(SearchStats &stats) const
    {
        stats.statesInterned = states_.size();
        stats.framesInterned = frames_.size();
    }

  private:
    friend class ShardEngine;

    /** Tau successors of one interned state, published once. */
    using TauVec = std::vector<std::pair<Addr, StateId>>;

    std::atomic<TauVec *> &tauSlot(StateId s)
    {
        tauMemo_.ensure(s + 1);
        return tauMemo_[s];
    }

    /** Crash successor slots store id + 1 (0 = unset). */
    std::atomic<uint32_t> &crashSlot(StateId s, NodeId n)
    {
        size_t i = static_cast<size_t>(s) * numNodes_ + n;
        crashMemo_.ensure(i + 1);
        return crashMemo_[i];
    }

    /** Closure slots store closed-frame id + 1 (0 = unset). */
    std::atomic<uint32_t> &closureSlot(FrameId f)
    {
        closureMemo_.ensure(f + 1);
        return closureMemo_[f];
    }

    const Cxl0Model &model_;
    const size_t numNodes_;
    model::StateTable states_;
    model::FrameTable frames_;
    SegmentedArray<std::atomic<TauVec *>, 6> tauMemo_;
    SegmentedArray<std::atomic<uint32_t>, 6> crashMemo_;
    SegmentedArray<std::atomic<uint32_t>, 6> closureMemo_;
    std::atomic<size_t> tauHeapBytes_{0}; //!< published TauVec heap
};

/**
 * The per-worker tier: scratch buffers for in-place successor
 * generation over a shared ModelContext. Not thread-safe — one per
 * worker thread — but any number of ShardEngines may share one
 * context concurrently.
 */
class ShardEngine
{
  public:
    explicit ShardEngine(ModelContext &ctx);

    ModelContext &context() { return ctx_; }
    const ModelContext &context() const { return ctx_; }

    const Cxl0Model &model() const { return ctx_.model(); }
    model::StateTable &states() { return ctx_.states(); }
    const model::StateTable &states() const { return ctx_.states(); }
    model::FrameTable &frames() { return ctx_.frames(); }
    const model::FrameTable &frames() const { return ctx_.frames(); }

    /** Intern one state. */
    StateId internState(const State &s)
    {
        return ctx_.states().intern(s);
    }

    /** Rebuild state `id` into `out` (no allocation). */
    void materializeState(StateId id, State &out) const
    {
        ctx_.states().materialize(id, out);
    }

    /**
     * Tau successor states of `s`, as (address moved, successor id)
     * pairs, computed once per interned state across all workers.
     * The returned reference is stable for the context's lifetime.
     */
    const std::vector<std::pair<Addr, StateId>> &
    tauSuccessorsOf(StateId s);

    /** Successor of a crash of node `n` in state `s`, memoized. */
    StateId crashSuccessorOf(StateId s, NodeId n);

    /**
     * Intern a frame from a scratch id vector (sorted/deduped in
     * place). An empty vector interns the empty frame.
     */
    FrameId internFrame(std::vector<StateId> &ids)
    {
        return ctx_.frames().intern(ids);
    }

    /** The tau closure of a single state, as an interned frame. */
    FrameId closedSingleton(const State &s);

    /**
     * The tau closure of frame `f`, memoized per frame: checkers that
     * revisit a determinized state set (every subset-construction
     * search does, constantly) pay for the closure once.
     */
    FrameId tauClosureFrame(FrameId f);

    /**
     * Apply one non-tau label across frame `f`: the frame of all
     * successor states (not tau-closed), or model::kNoFrameId when no
     * member state enables the label.
     */
    FrameId applyFrame(FrameId f, const Label &label);

    /**
     * As applyFrame, but into a raw id vector without interning a
     * frame (successor ids, unsorted, possibly duplicated). Returns
     * false when no member state enables the label. For callers that
     * memoize (frame, label) steps themselves and only want the
     * closure interned — interning every intermediate unclosed frame
     * is pure arena growth.
     */
    bool applyFrameRaw(FrameId f, const Label &label,
                       std::vector<StateId> &out);

    /**
     * Tau-close a raw id set (consumed as scratch) and intern only
     * the closed frame.
     */
    FrameId tauClosureOfRaw(std::vector<StateId> &ids);

    /** Materialize every state of frame `f` into `out` (cleared). */
    void materializeFrame(FrameId f, std::vector<State> &out) const;

    /**
     * Whether every state of frame `sub` is a member of frame `sup`.
     * Frames are sorted id spans over one table, so this is a linear
     * merge walk — no hashing, no materialization.
     */
    bool frameSubsumes(FrameId sup, FrameId sub) const;

    /** Worker-owned resident bytes (scratch buffers and marks). */
    size_t bytes() const;

    /** Fill the table-derived fields of a SearchStats. */
    void fillStats(SearchStats &stats) const
    {
        ctx_.fillStats(stats);
    }

  private:
    ModelContext &ctx_;
    State scratch_; //!< materialization / apply buffer
    State work_;    //!< successor under mutation
    std::vector<model::TauMove> moveBuf_;
    std::vector<StateId> idBuf_;       //!< frame assembly scratch
    std::vector<uint32_t> mark_;       //!< epoch marks over StateIds
    uint32_t epoch_ = 0;
};

/**
 * The historical single-threaded engine: one ModelContext bundled
 * with one ShardEngine. Construction is cheap; tables grow on demand.
 * The sharded drivers do not use this — they build one context and N
 * ShardEngines — but sequential checkers and tests keep the familiar
 * one-object surface.
 */
class SearchEngine : public ShardEngine
{
  public:
    explicit SearchEngine(const Cxl0Model &model);

    /** Resident bytes of the tables, memos, and scratch. */
    size_t bytes() const
    {
        return context().bytes() + ShardEngine::bytes();
    }

  private:
    explicit SearchEngine(std::unique_ptr<ModelContext> ctx);

    std::unique_ptr<ModelContext> own_;
};

} // namespace cxl0::check

#endif // CXL0_CHECK_ENGINE_HH
