/**
 * @file
 * The shared search engine and the unified Request/Report API.
 *
 * Every checker in src/check explores the same CXL0 LTS; what used to
 * differ was plumbing: the explorer had a private interned/packed hot
 * path, refinement deep-copied whole state-set frames per step, and
 * each checker invented its own options/stats/counterexample
 * vocabulary. This header extracts the common core:
 *
 *   - SearchEngine: one per model. Owns the interning tables
 *     (model::StateTable for states, model::FrameTable for state-set
 *     frames), the reusable scratch states for in-place successor
 *     generation, and per-state memoized tau/crash successors. Frame
 *     operations (apply a label across a frame, tau-close a frame)
 *     work entirely over dense ids — no checker copies a
 *     vector<State> per search step anymore.
 *
 *   - PackedConfig / FlatConfigSet / ConfigFrontier: the 32-byte POD
 *     configuration, the flat open-addressed visited set, and the
 *     frontier with a pluggable policy (DFS stack / BFS queue). The
 *     frontier is the sharding seam for the planned parallel
 *     explorer: a worker-per-shard design instantiates one frontier
 *     and one visited set per config-hash shard without touching the
 *     search logic.
 *
 *   - CheckRequest / CheckReport: the uniform vocabulary. A request
 *     carries budgets (configs, depth), reduction toggles, and crash
 *     settings; a report carries a verdict, outcome set, truncation
 *     flag, unified SearchStats, and a typed counterexample. All four
 *     checkers (Explorer, checkTraceFeasible, checkRefinement,
 *     checkTraceInclusion) speak this vocabulary; their historical
 *     entry points remain as thin shims.
 */

#ifndef CXL0_CHECK_ENGINE_HH
#define CXL0_CHECK_ENGINE_HH

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "model/label.hh"
#include "model/semantics.hh"
#include "model/state_table.hh"

namespace cxl0::check
{

using model::Cxl0Model;
using model::FrameId;
using model::Label;
using model::State;
using model::StateId;

// ===================================================================
// Request / Report vocabulary
// ===================================================================

/** How the configurations awaiting expansion are ordered. */
enum class FrontierPolicy
{
    DepthFirst,   //!< LIFO stack (default; lowest memory)
    BreadthFirst, //!< FIFO queue (shortest-counterexample order)
};

/**
 * A checking request: budgets and toggles every checker understands.
 * Checker-specific inputs (the program, the trace, the alphabet) stay
 * positional; this struct is the shared part.
 */
struct CheckRequest
{
    /**
     * Budget on distinct configurations (explorer: packed configs in
     * the visited set; refinement: determinized frame pairs; trace
     * checkers: interned states). Hitting it stops the search
     * gracefully and sets CheckReport::truncated.
     */
    size_t maxConfigs = 2'000'000;

    /**
     * Depth bound for trace-generating searches (visible labels per
     * trace). 0 means unbounded; checkers that cannot terminate
     * without a bound (refinement) reject 0. The explorer ignores it:
     * programs are straight-line and finite.
     */
    size_t maxDepth = 0;

    /** Max crash events per machine over one execution (explorer). */
    int maxCrashesPerNode = 0;

    /** Machines permitted to crash; empty = all machines. */
    std::vector<NodeId> crashableNodes;

    /**
     * Skip tau moves on addresses that no live thread's remaining
     * code can ever touch again (and no GPF is pending). Sound for
     * the explorer — see src/check/README.md; ignored by checkers
     * whose traces observe tau placement indirectly.
     */
    bool reduceTau = true;

    /** Frontier ordering (outcome sets are order-independent). */
    FrontierPolicy frontier = FrontierPolicy::DepthFirst;
};

/** Three-valued verdict shared by every checker. */
enum class CheckVerdict
{
    Pass,         //!< property holds / enumeration complete
    Fail,         //!< property violated (counterexample attached)
    Inconclusive, //!< budget or bound cut the search before an answer
};

/** "pass" / "fail" / "inconclusive". */
const char *checkVerdictName(CheckVerdict v);

/** Counters describing one search run, shared by all checkers. */
struct SearchStats
{
    /** Configurations (or frames) popped and expanded. */
    size_t configsVisited = 0;
    /** Distinct packed configurations / frame pairs seen. */
    size_t configsInterned = 0;
    /** Distinct model states in the interning table(s). */
    size_t statesInterned = 0;
    /** Distinct state-set frames in the frame table(s). */
    size_t framesInterned = 0;
    /** Resident bytes of visited set + tables + frontier (peak). */
    size_t peakVisitedBytes = 0;
    /** Tau successors pruned by the footprint reduction. */
    size_t tauMovesSkipped = 0;
    /** Wall-clock seconds inside the checker. */
    double seconds = 0.0;
};

/** A typed counterexample: a label trace and/or a description. */
struct Counterexample
{
    /** The violating visible trace (refinement, inclusion). */
    std::vector<model::Label> trace;
    /** Human-readable context (offending state, blocked index, ...). */
    std::string description;

    bool empty() const { return trace.empty() && description.empty(); }
    std::string describe() const;
};

/** A final outcome of one complete explorer execution. */
struct Outcome
{
    /** Final register file of each thread; crashed threads keep the
     *  registers they had when their machine failed. */
    std::vector<std::vector<Value>> regs;
    /** Bit i set when thread i's machine crashed before it finished. */
    uint32_t crashedThreads = 0;

    bool operator<(const Outcome &other) const;
    bool operator==(const Outcome &other) const;
    std::string describe() const;
};

/**
 * The uniform result of any checking request. Checkers fill the
 * fields that apply: the explorer reports outcomes, refinement and
 * inclusion report a counterexample on failure; everyone reports the
 * verdict, truncation, and SearchStats.
 */
struct CheckReport
{
    CheckVerdict verdict = CheckVerdict::Pass;
    /** Reachable final outcomes (explorer; empty elsewhere). When
     *  truncated, a still-valid subset of the reachable set. */
    std::set<Outcome> outcomes;
    /** True when a budget or bound stopped the search early. */
    bool truncated = false;
    SearchStats stats;
    /** Populated when verdict == Fail. */
    Counterexample counterexample;

    /** One-line summary: verdict, counterexample, key stats. */
    std::string describe() const;
};

// ===================================================================
// Packed configurations, visited set, frontier
// ===================================================================

/**
 * One packed search configuration: every component is either an
 * interned id or a fixed-width bitfield word, so the visited set and
 * the frontier hold 32-byte PODs instead of multi-vector objects.
 * The field names follow the explorer's use; other checkers may
 * repurpose the slots (documented at their packing site).
 */
struct PackedConfig
{
    StateId state = 0;   //!< interned model::State (or frame id)
    uint32_t regs = 0;   //!< interned flat register file (all threads)
    uint64_t pc = 0;     //!< bitsPerPc bits per thread
    uint32_t alive = 0;  //!< bit t set while thread t's machine is up
    uint64_t crash = 0;  //!< bitsPerBudget bits of crash budget per node

    bool operator==(const PackedConfig &other) const = default;
};

static_assert(sizeof(PackedConfig) == 32,
              "visited-set entries are expected to pack to 32 bytes");

/** Mixed content hash of a packed configuration. */
uint64_t hashPacked(const PackedConfig &c);

/**
 * Open-addressed set of PackedConfigs (linear probing, power-of-two
 * capacity, no deletion). Entries with state == kNoStateId are empty
 * slots; real configs always carry a valid interned id. One instance
 * per shard in the planned parallel frontier.
 */
class FlatConfigSet
{
  public:
    FlatConfigSet();

    bool contains(const PackedConfig &c) const;

    /** Insert; returns true when the config was not present. */
    bool insert(const PackedConfig &c);

    size_t size() const { return count_; }
    size_t bytes() const
    {
        return slots_.capacity() * sizeof(PackedConfig);
    }

  private:
    static PackedConfig empty();
    void grow();

    std::vector<PackedConfig> slots_;
    size_t mask_;
    size_t count_ = 0;
};

/**
 * The set of configurations awaiting expansion, behind a policy seam:
 * DFS uses a contiguous stack, BFS a deque. A future sharded parallel
 * frontier drops in per-shard instances keyed by config hash without
 * changing any search loop.
 */
class ConfigFrontier
{
  public:
    explicit ConfigFrontier(
        FrontierPolicy policy = FrontierPolicy::DepthFirst)
        : policy_(policy)
    {
    }

    void push(const PackedConfig &c)
    {
        if (policy_ == FrontierPolicy::DepthFirst)
            stack_.push_back(c);
        else
            queue_.push_back(c);
    }

    bool empty() const
    {
        return policy_ == FrontierPolicy::DepthFirst ? stack_.empty()
                                                     : queue_.empty();
    }

    PackedConfig pop();

    /** Resident bytes (approximate for the deque). */
    size_t bytes() const
    {
        return policy_ == FrontierPolicy::DepthFirst
                   ? stack_.capacity() * sizeof(PackedConfig)
                   : queue_.size() * sizeof(PackedConfig);
    }

  private:
    FrontierPolicy policy_;
    std::vector<PackedConfig> stack_;
    std::deque<PackedConfig> queue_;
};

/**
 * Fixed-width per-index bitfields packed into one 64-bit word: the
 * explorer's pc and crash-budget words and refinement's crash-budget
 * word all encode through this.
 */
class BitfieldWord
{
  public:
    BitfieldWord() = default;
    explicit BitfieldWord(unsigned bits_per_field)
        : bits_(bits_per_field),
          mask_(bits_per_field >= 64 ? ~0ull
                                     : (1ull << bits_per_field) - 1)
    {
    }

    unsigned bits() const { return bits_; }

    /** Whether `fields` entries fit into one word. */
    bool fits(size_t fields) const
    {
        return bits_ == 0 || fields * bits_ <= 64;
    }

    uint64_t get(uint64_t word, size_t i) const
    {
        return bits_ == 0 ? 0 : (word >> (i * bits_)) & mask_;
    }

    uint64_t set(uint64_t word, size_t i, uint64_t v) const
    {
        if (bits_ == 0)
            return word;
        uint64_t m = mask_ << (i * bits_);
        return (word & ~m) | (v << (i * bits_));
    }

  private:
    unsigned bits_ = 0;
    uint64_t mask_ = 0;
};

// ===================================================================
// SearchEngine
// ===================================================================

/**
 * The reusable search core, one per (model, search). Construction is
 * cheap; tables grow on demand. Not thread-safe: the planned parallel
 * explorer shards configurations and gives each worker its own
 * engine.
 */
class SearchEngine
{
  public:
    explicit SearchEngine(const Cxl0Model &model);

    const Cxl0Model &model() const { return model_; }
    model::StateTable &states() { return states_; }
    const model::StateTable &states() const { return states_; }
    model::FrameTable &frames() { return frames_; }
    const model::FrameTable &frames() const { return frames_; }

    /** Intern one state. */
    StateId internState(const State &s) { return states_.intern(s); }

    /** Rebuild state `id` into `out` (no allocation). */
    void materializeState(StateId id, State &out) const
    {
        states_.materialize(id, out);
    }

    /**
     * Tau successor states of `s`, as (address moved, successor id)
     * pairs, computed once per interned state. The reference is only
     * valid until the next tauSuccessorsOf/crashSuccessorOf call
     * (either may grow the memo vector); copy it out before asking
     * about another state.
     */
    const std::vector<std::pair<Addr, StateId>> &
    tauSuccessorsOf(StateId s);

    /** Successor of a crash of node `n` in state `s`, memoized. */
    StateId crashSuccessorOf(StateId s, NodeId n);

    /**
     * Intern a frame from a scratch id vector (sorted/deduped in
     * place). An empty vector interns the empty frame.
     */
    FrameId internFrame(std::vector<StateId> &ids)
    {
        return frames_.intern(ids);
    }

    /** The tau closure of a single state, as an interned frame. */
    FrameId closedSingleton(const State &s);

    /**
     * The tau closure of frame `f`, memoized per frame: checkers that
     * revisit a determinized state set (every subset-construction
     * search does, constantly) pay for the closure once.
     */
    FrameId tauClosureFrame(FrameId f);

    /**
     * Apply one non-tau label across frame `f`: the frame of all
     * successor states (not tau-closed), or model::kNoFrameId when no
     * member state enables the label.
     */
    FrameId applyFrame(FrameId f, const Label &label);

    /**
     * As applyFrame, but into a raw id vector without interning a
     * frame (successor ids, unsorted, possibly duplicated). Returns
     * false when no member state enables the label. For callers that
     * memoize (frame, label) steps themselves and only want the
     * closure interned — interning every intermediate unclosed frame
     * is pure arena growth.
     */
    bool applyFrameRaw(FrameId f, const Label &label,
                       std::vector<StateId> &out);

    /**
     * Tau-close a raw id set (consumed as scratch) and intern only
     * the closed frame.
     */
    FrameId tauClosureOfRaw(std::vector<StateId> &ids);

    /** Materialize every state of frame `f` into `out` (cleared). */
    void materializeFrame(FrameId f, std::vector<State> &out) const;

    /**
     * Whether every state of frame `sub` is a member of frame `sup`.
     * Frames are sorted id spans over one table, so this is a linear
     * merge walk — no hashing, no materialization.
     */
    bool frameSubsumes(FrameId sup, FrameId sub) const;

    /** Resident bytes of the tables and memos. */
    size_t bytes() const;

    /** Fill the table-derived fields of a SearchStats. */
    void fillStats(SearchStats &stats) const
    {
        stats.statesInterned = states_.size();
        stats.framesInterned = frames_.size();
    }

  private:
    /** Per-state successor memo: tau and crash successor *states*
     *  depend only on the model state, so every configuration sharing
     *  the state reuses the ids. */
    struct StateSuccs
    {
        bool tauDone = false;
        std::vector<std::pair<Addr, StateId>> tau;
        /** Successor of a crash of node n, kNoStateId = uncomputed. */
        std::vector<StateId> crash;
    };

    StateSuccs &succsFor(StateId s);

    const Cxl0Model &model_;
    model::StateTable states_;
    model::FrameTable frames_;
    State scratch_; //!< materialization / apply buffer
    State work_;    //!< successor under mutation
    std::vector<model::TauMove> moveBuf_;
    std::vector<StateSuccs> succs_;
    size_t succHeapBytes_ = 0; //!< memo heap, tracked so bytes() is O(1)
    std::vector<FrameId> closureMemo_; //!< FrameId -> closed FrameId
    std::vector<StateId> idBuf_;       //!< frame assembly scratch
    std::vector<uint32_t> mark_;       //!< epoch marks over StateIds
    uint32_t epoch_ = 0;
};

} // namespace cxl0::check

#endif // CXL0_CHECK_ENGINE_HH
