#include "check/checkpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

#include "common/logging.hh"
#include "common/spill.hh"

namespace cxl0::check
{

namespace
{

constexpr char kMagic[8] = {'C', 'X', 'L', '0', 'C', 'K', 'P', '1'};

/** FNV-1a over the snapshot body; appended as the trailer. */
uint64_t
checksum(const char *p, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(p[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
putRaw(std::string &out, const void *p, size_t n)
{
    out.append(static_cast<const char *>(p), n);
}

void
putU64(std::string &out, uint64_t v)
{
    putRaw(out, &v, sizeof v);
}

template <typename T>
void
putVec(std::string &out, const std::vector<T> &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    putU64(out, v.size());
    putRaw(out, v.data(), v.size() * sizeof(T));
}

/** The stats subset a snapshot preserves, in a fixed field order. */
void
putStats(std::string &out, const SearchStats &s)
{
    putU64(out, s.configsVisited);
    putU64(out, s.tauMovesSkipped);
    putU64(out, s.ampleSkipped);
    putU64(out, s.crashAmpleSkipped);
    putU64(out, s.sleepSetSkipped);
    putU64(out, s.symmetryMerged);
    putU64(out, s.stealsAttempted);
    putU64(out, s.stealsSucceeded);
    putU64(out, s.spilledConfigs);
    putU64(out, s.spillBytes);
    putU64(out, s.inboxBatches);
}

/** Bounds-checked cursor; any overrun means a truncated file. */
struct Cursor
{
    const char *p;
    size_t left;

    void take(void *out, size_t n)
    {
        if (n > left)
            throw std::runtime_error(
                "truncated checkpoint file (unexpected end of "
                "data)");
        std::memcpy(out, p, n);
        p += n;
        left -= n;
    }

    uint64_t u64()
    {
        uint64_t v;
        take(&v, sizeof v);
        return v;
    }

    template <typename T>
    void vec(std::vector<T> &out, size_t maxElems)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        uint64_t n = u64();
        if (n > maxElems || n * sizeof(T) > left)
            throw std::runtime_error(
                "corrupt checkpoint file (implausible section "
                "length)");
        out.resize(static_cast<size_t>(n));
        take(out.data(), static_cast<size_t>(n) * sizeof(T));
    }

    void stats(SearchStats &s)
    {
        s.configsVisited = u64();
        s.tauMovesSkipped = u64();
        s.ampleSkipped = u64();
        s.crashAmpleSkipped = u64();
        s.sleepSetSkipped = u64();
        s.symmetryMerged = u64();
        s.stealsAttempted = u64();
        s.stealsSucceeded = u64();
        s.spilledConfigs = u64();
        s.spillBytes = u64();
        s.inboxBatches = u64();
    }
};

} // namespace

std::string
checkpointPath(const std::string &dir)
{
    return dir + "/checkpoint.bin";
}

bool
writeCheckpoint(const std::string &dir, const CheckpointData &d)
{
    if (!ensureDir(dir)) {
        CXL0_WARN("checkpoint: cannot create directory '", dir, "'");
        return false;
    }
    std::string buf;
    putRaw(buf, kMagic, sizeof kMagic);
    putU64(buf, d.fingerprint);
    putU64(buf, d.totalVisited);
    putU64(buf, d.checkpointsWritten);
    putU64(buf, d.regsPerOutcome);
    putU64(buf, d.stateStride);
    putVec(buf, d.stateHashes);
    putVec(buf, d.stateSpans);
    putU64(buf, d.regStride);
    putVec(buf, d.regHashes);
    putVec(buf, d.regSpans);
    putU64(buf, d.workers.size());
    for (const WorkerSnapshot &w : d.workers) {
        putVec(buf, w.visited);
        putVec(buf, w.emitted);
        putVec(buf, w.outcomeCrashed);
        putVec(buf, w.outcomeRegs);
        putStats(buf, w.stats);
        putVec(buf, w.frontier);
        putVec(buf, w.inbox);
    }
    putU64(buf, checksum(buf.data(), buf.size()));

    // Atomic replace: a reader (or a resumed run after SIGKILL)
    // only ever sees the previous complete snapshot or this one.
    const std::string final_path = checkpointPath(dir);
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp_path.c_str(), "wb");
    if (f == nullptr) {
        CXL0_WARN("checkpoint: fopen('", tmp_path, "') failed: ",
                  std::strerror(errno));
        return false;
    }
    bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    ok = std::fflush(f) == 0 && ok;
    ok = ::fsync(::fileno(f)) == 0 && ok;
    std::fclose(f);
    if (ok)
        ok = std::rename(tmp_path.c_str(), final_path.c_str()) == 0;
    if (!ok) {
        CXL0_WARN("checkpoint: writing '", final_path, "' failed: ",
                  std::strerror(errno));
        std::remove(tmp_path.c_str());
    }
    return ok;
}

void
readCheckpoint(const std::string &dir, CheckpointData &d)
{
    const std::string path = checkpointPath(dir);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw std::runtime_error("cannot open checkpoint '" + path +
                                 "': " + std::strerror(errno));
    std::string buf;
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        buf.append(chunk, n);
    bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err)
        throw std::runtime_error("cannot read checkpoint '" + path +
                                 "'");

    if (buf.size() < sizeof kMagic + sizeof(uint64_t) ||
        std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0)
        throw std::runtime_error(
            "'" + path + "' is not a cxl0 checkpoint file");
    const size_t body = buf.size() - sizeof(uint64_t);
    uint64_t stored;
    std::memcpy(&stored, buf.data() + body, sizeof stored);
    if (checksum(buf.data(), body) != stored)
        throw std::runtime_error(
            "checkpoint '" + path +
            "' is corrupt (checksum mismatch; was the writing run "
            "killed mid-rename or the file edited?)");

    Cursor c{buf.data() + sizeof kMagic, body - sizeof kMagic};
    d = CheckpointData{};
    d.fingerprint = c.u64();
    d.totalVisited = c.u64();
    d.checkpointsWritten = c.u64();
    d.regsPerOutcome = c.u64();
    d.stateStride = c.u64();
    // Element caps only sanity-bound against the remaining bytes;
    // the checksum already vouches for integrity.
    const size_t cap = buf.size();
    c.vec(d.stateHashes, cap);
    c.vec(d.stateSpans, cap);
    d.regStride = c.u64();
    c.vec(d.regHashes, cap);
    c.vec(d.regSpans, cap);
    uint64_t nworkers = c.u64();
    if (nworkers > 4096)
        throw std::runtime_error(
            "corrupt checkpoint file (implausible worker count)");
    d.workers.resize(static_cast<size_t>(nworkers));
    for (WorkerSnapshot &w : d.workers) {
        c.vec(w.visited, cap);
        c.vec(w.emitted, cap);
        c.vec(w.outcomeCrashed, cap);
        c.vec(w.outcomeRegs, cap);
        c.stats(w.stats);
        c.vec(w.frontier, cap);
        c.vec(w.inbox, cap);
    }
    if (c.left != 0)
        throw std::runtime_error(
            "corrupt checkpoint file (trailing bytes)");
    if (d.stateHashes.size() * d.stateStride != d.stateSpans.size() ||
        d.regHashes.size() * d.regStride != d.regSpans.size())
        throw std::runtime_error(
            "corrupt checkpoint file (table section shape "
            "mismatch)");
}

} // namespace cxl0::check
