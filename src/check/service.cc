#include "check/service.hh"

namespace cxl0::check
{

std::string
contextPoolKey(const model::SystemConfig &cfg,
               model::ModelVariant variant)
{
    std::string key;
    switch (variant) {
    case model::ModelVariant::Base:
        key = "base";
        break;
    case model::ModelVariant::Psn:
        key = "psn";
        break;
    case model::ModelVariant::Lwb:
        key = "lwb";
        break;
    }
    key += ";m=";
    for (size_t n = 0; n < cfg.numNodes(); ++n)
        key += cfg.isPersistent(static_cast<NodeId>(n)) ? 'n' : 'v';
    key += ";o=";
    for (size_t a = 0; a < cfg.numAddrs(); ++a) {
        if (a)
            key += ',';
        key += std::to_string(cfg.ownerOf(static_cast<Addr>(a)));
    }
    return key;
}

ContextPool::Entry &
ContextPool::acquire(const model::SystemConfig &cfg,
                     model::ModelVariant variant)
{
    std::string key = contextPoolKey(cfg, variant);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++reuses_;
        return *it->second;
    }
    auto entry = std::make_unique<Entry>(cfg, variant);
    Entry &ref = *entry;
    entries_.emplace(std::move(key), std::move(entry));
    return ref;
}

size_t
ContextPool::bytes() const
{
    size_t total = 0;
    for (const auto &[key, entry] : entries_)
        total += entry->ctx.bytes();
    return total;
}

} // namespace cxl0::check
