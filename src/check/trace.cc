#include "check/trace.hh"

#include <chrono>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "model/state_table.hh"
#include "obs/telemetry.hh"

namespace cxl0::check
{

using model::FrameId;
using model::kNoFrameId;

FrameId
frameAfterWalk(ShardEngine &eng, const State &init,
               const std::vector<Label> &trace)
{
    FrameId frontier = eng.closedSingleton(init);
    for (const Label &label : trace) {
        FrameId next = eng.applyFrame(frontier, label);
        if (next == kNoFrameId)
            return kNoFrameId;
        frontier = eng.tauClosureFrame(next);
    }
    return frontier;
}

FrameId
TraceChecker::frameAfter(const State &init,
                         const std::vector<Label> &trace) const
{
    return frameAfterWalk(engine_, init, trace);
}

std::vector<State>
TraceChecker::statesAfter(const State &init,
                          const std::vector<Label> &trace) const
{
    std::vector<State> out;
    FrameId f = frameAfter(init, trace);
    if (f != kNoFrameId)
        engine_.materializeFrame(f, out);
    return out;
}

bool
TraceChecker::feasible(const std::vector<Label> &trace) const
{
    return feasibleFrom(model_.initialState(), trace);
}

bool
TraceChecker::feasibleFrom(const State &init,
                           const std::vector<Label> &trace) const
{
    return frameAfter(init, trace) != kNoFrameId;
}

size_t
TraceChecker::firstBlockedIndex(const State &init,
                                const std::vector<Label> &trace) const
{
    FrameId frontier = engine_.closedSingleton(init);
    for (size_t k = 0; k < trace.size(); ++k) {
        FrameId next = engine_.applyFrame(frontier, trace[k]);
        if (next == kNoFrameId)
            return k;
        frontier = engine_.tauClosureFrame(next);
    }
    return trace.size();
}

CheckReport
checkTraceFeasibleFrom(const Cxl0Model &model, const State &init,
                       const std::vector<Label> &trace,
                       const CheckRequest &request,
                       ModelContext *shared)
{
    if (shared && &shared->model() != &model)
        CXL0_FATAL("shared ModelContext built over a different model");
    auto t_start = std::chrono::steady_clock::now();
    const obs::ScopedSpan phaseSpan(obs::threadRing(),
                                    "search:feasible");
    CheckReport res;
    // One ModelContext + one ShardEngine (that's what a SearchEngine
    // is): the prefix walk is a single dependency chain, so
    // request.numThreads has nothing to fan out and one worker runs.
    std::optional<ModelContext> own_ctx;
    if (!shared)
        own_ctx.emplace(model);
    ShardEngine engine(shared ? *shared : *own_ctx);
    const Deadline deadline(request.timeBudgetMs);
    FrameId frontier = engine.closedSingleton(init);
    size_t k = 0;
    for (; k < trace.size(); ++k) {
        if (deadline.expired()) {
            res.truncated = true;
            res.timedOut = true;
            break;
        }
        if (engine.states().size() >= request.maxConfigs ||
            (request.maxDepth != 0 && k >= request.maxDepth)) {
            res.truncated = true;
            break;
        }
        FrameId next = engine.applyFrame(frontier, trace[k]);
        if (next == kNoFrameId)
            break;
        frontier = engine.tauClosureFrame(next);
        ++res.stats.configsVisited;
    }

    if (res.truncated) {
        res.verdict = CheckVerdict::Inconclusive;
    } else if (k == trace.size()) {
        res.verdict = CheckVerdict::Pass;
    } else {
        res.verdict = CheckVerdict::Fail;
        res.counterexample.trace.assign(trace.begin(),
                                        trace.begin() + k + 1);
        std::ostringstream os;
        os << "blocked at index " << k << " ("
           << trace[k].describe() << ")";
        res.counterexample.description = os.str();
    }
    engine.fillStats(res.stats);
    res.stats.configsInterned = engine.frames().size();
    res.stats.tableBytes = engine.context().bytes();
    res.stats.peakVisitedBytes =
        engine.context().bytes() + engine.bytes();
    finalizeReportTiming(res, t_start);
    return res;
}

CheckReport
checkTraceFeasible(const Cxl0Model &model,
                   const std::vector<Label> &trace,
                   const CheckRequest &request, ModelContext *shared)
{
    return checkTraceFeasibleFrom(model, model.initialState(), trace,
                                  request, shared);
}

} // namespace cxl0::check
