#include "check/trace.hh"

#include "model/state_table.hh"

namespace cxl0::check
{

namespace
{

/**
 * Deduplicate a state vector by interning into a StateTable: O(1)
 * hashing (states maintain their digest incrementally) and no
 * per-entry node allocation.
 */
std::vector<State>
dedup(std::vector<State> states)
{
    if (states.empty())
        return states;
    model::StateTable table(states[0].numNodes(),
                            states[0].numAddrs());
    std::vector<State> out;
    for (State &s : states) {
        bool fresh = false;
        table.intern(s, &fresh);
        if (fresh)
            out.push_back(std::move(s));
    }
    return out;
}

} // namespace

std::vector<State>
TraceChecker::statesAfter(const State &init,
                          const std::vector<Label> &trace) const
{
    std::vector<State> frontier = model_.tauClosure(init);
    for (const Label &label : trace) {
        std::vector<State> next;
        for (const State &s : frontier) {
            if (auto succ = model_.apply(s, label)) {
                for (State &closed : model_.tauClosure(*succ))
                    next.push_back(std::move(closed));
            }
        }
        frontier = dedup(std::move(next));
        if (frontier.empty())
            break;
    }
    return frontier;
}

bool
TraceChecker::feasible(const std::vector<Label> &trace) const
{
    return feasibleFrom(model_.initialState(), trace);
}

bool
TraceChecker::feasibleFrom(const State &init,
                           const std::vector<Label> &trace) const
{
    return !statesAfter(init, trace).empty();
}

size_t
TraceChecker::firstBlockedIndex(const State &init,
                                const std::vector<Label> &trace) const
{
    std::vector<State> frontier = model_.tauClosure(init);
    for (size_t k = 0; k < trace.size(); ++k) {
        std::vector<State> next;
        for (const State &s : frontier) {
            if (auto succ = model_.apply(s, trace[k])) {
                for (State &closed : model_.tauClosure(*succ))
                    next.push_back(std::move(closed));
            }
        }
        frontier = dedup(std::move(next));
        if (frontier.empty())
            return k;
    }
    return trace.size();
}

} // namespace cxl0::check
