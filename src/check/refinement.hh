/**
 * @file
 * Bounded trace-refinement checking between CXL0 variants.
 *
 * The paper uses the FDR4 CSP refinement checker to compare CXL0 with
 * CXL0_PSN and CXL0_LWB (§3.5): every variant trace is a CXL0 trace,
 * CXL0 has traces neither variant allows, and the two variants are
 * incomparable. We reproduce this with a bounded explicit-state
 * checker: traces are sequences of visible labels (tau hidden) drawn
 * from a finite alphabet, and refinement is checked by a simultaneous
 * subset-construction walk of both LTSs up to a depth bound.
 *
 * The walk runs on two shared ModelContexts (one per model) drained
 * by CheckRequest::numThreads shard workers: each determinized state
 * set is an interned frame, so a search configuration is a few dense
 * ids plus a packed crash-budget word — nothing deep-copies a state
 * set per step anymore. Pairs partition across shards by
 * (spec, impl, budget) hash, each shard keeps an exact flat
 * (pair -> remaining depth) memo, counterexample traces reconstruct
 * from a shared parent-pointer DAG, and verdicts are independent of
 * the worker count. The historical entry points shim onto the
 * CheckRequest/CheckReport API; checkRefinementReference() keeps the
 * original deep-copy search as an executable reference for the
 * regression tests and bench_refinement_scaling.
 */

#ifndef CXL0_CHECK_REFINEMENT_HH
#define CXL0_CHECK_REFINEMENT_HH

#include <string>
#include <vector>

#include "check/engine.hh"
#include "model/semantics.hh"

namespace cxl0::check
{

/** Finite label alphabet for trace generation. */
struct Alphabet
{
    /** Operations to draw from (Load handled specially). */
    std::vector<model::Op> ops;
    /** Store / RMW values. */
    std::vector<Value> values;
    /** Machines allowed to act; empty = all. */
    std::vector<NodeId> nodes;
    /** Max crash events per machine inside one trace. */
    int maxCrashesPerNode = 1;

    /** A reasonable default: all ops, values {0,1}, all nodes. */
    static Alphabet standard(const model::SystemConfig &cfg);
};

/**
 * Check that every trace of `impl` (up to `request.maxDepth` visible
 * labels over `alphabet`) is also a trace of `spec`. Both models must
 * share the same configuration shape; the depth bound must be
 * nonzero. Fail carries a violating impl trace as the typed
 * counterexample; Inconclusive means the depth bound or the config
 * budget cut the search with no violation found; Pass means the
 * bounded search exhausted without a violation or a cut.
 */
CheckReport checkRefinement(const model::Cxl0Model &spec,
                            const model::Cxl0Model &impl,
                            const Alphabet &alphabet,
                            const CheckRequest &request,
                            ModelContext *spec_shared = nullptr,
                            ModelContext *impl_shared = nullptr);

/**
 * The pre-engine implementation, kept executable: deep-copied
 * vector<State> frames per search step and a hash-only (unverified)
 * revisit memo. Verdicts must match checkRefinement();
 * tests/check/test_refinement.cc and bench_refinement_scaling compare
 * the two, and the bench tracks the frame-interning memory win.
 */
CheckReport checkRefinementReference(const model::Cxl0Model &spec,
                                     const model::Cxl0Model &impl,
                                     const Alphabet &alphabet,
                                     const CheckRequest &request);

/** Result of a refinement query (historical shim vocabulary). */
struct RefinementResult
{
    bool refines = true;
    /** When violated: a shortest trace of impl that spec cannot do. */
    std::vector<model::Label> counterexample;

    std::string describe() const;
};

/**
 * Historical entry point: bounded refinement up to `depth` labels.
 * Thin shim over the CheckRequest/CheckReport form above.
 */
RefinementResult checkRefinement(const model::Cxl0Model &spec,
                                 const model::Cxl0Model &impl,
                                 size_t depth, const Alphabet &alphabet);

/**
 * Collect every feasible visible trace of `m` up to `depth` labels.
 * Exposed for tests; exponential in depth, keep the alphabet small.
 */
std::vector<std::vector<model::Label>>
enumerateTraces(const model::Cxl0Model &m, size_t depth,
                const Alphabet &alphabet);

} // namespace cxl0::check

#endif // CXL0_CHECK_REFINEMENT_HH
