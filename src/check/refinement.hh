/**
 * @file
 * Bounded trace-refinement checking between CXL0 variants.
 *
 * The paper uses the FDR4 CSP refinement checker to compare CXL0 with
 * CXL0_PSN and CXL0_LWB (§3.5): every variant trace is a CXL0 trace,
 * CXL0 has traces neither variant allows, and the two variants are
 * incomparable. We reproduce this with a bounded explicit-state
 * checker: traces are sequences of visible labels (tau hidden) drawn
 * from a finite alphabet, and refinement is checked by a simultaneous
 * subset-construction walk of both LTSs up to a depth bound.
 */

#ifndef CXL0_CHECK_REFINEMENT_HH
#define CXL0_CHECK_REFINEMENT_HH

#include <string>
#include <vector>

#include "model/semantics.hh"

namespace cxl0::check
{

/** Finite label alphabet for trace generation. */
struct Alphabet
{
    /** Operations to draw from (Load handled specially). */
    std::vector<model::Op> ops;
    /** Store / RMW values. */
    std::vector<Value> values;
    /** Machines allowed to act; empty = all. */
    std::vector<NodeId> nodes;
    /** Max crash events per machine inside one trace. */
    int maxCrashesPerNode = 1;

    /** A reasonable default: all ops, values {0,1}, all nodes. */
    static Alphabet standard(const model::SystemConfig &cfg);
};

/** Result of a refinement query. */
struct RefinementResult
{
    bool refines = true;
    /** When violated: a shortest trace of impl that spec cannot do. */
    std::vector<model::Label> counterexample;

    std::string describe() const;
};

/**
 * Check that every trace of `impl` (up to `depth` visible labels over
 * `alphabet`) is also a trace of `spec`. Both models must share the
 * same configuration shape.
 */
RefinementResult checkRefinement(const model::Cxl0Model &spec,
                                 const model::Cxl0Model &impl,
                                 size_t depth, const Alphabet &alphabet);

/**
 * Collect every feasible visible trace of `m` up to `depth` labels.
 * Exposed for tests; exponential in depth, keep the alphabet small.
 */
std::vector<std::vector<model::Label>>
enumerateTraces(const model::Cxl0Model &m, size_t depth,
                const Alphabet &alphabet);

} // namespace cxl0::check

#endif // CXL0_CHECK_REFINEMENT_HH
