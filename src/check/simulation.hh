/**
 * @file
 * Exhaustive checking of Proposition 1 (paper §3.4).
 *
 * The paper proves eight trace-simulation statements in Rocq. We do
 * not have a proof assistant here; instead we check the statements
 * *exhaustively* over every invariant-satisfying state of bounded
 * systems (the statements are parametric only in the state, the acting
 * machines, the address, and the value, so bounded exhaustion over
 * 2-3 machines and values {0,1} exercises every rule interaction).
 *
 * Statement shape: "if gamma --lhs--> gamma' then gamma --rhs-->
 * gamma'", where --trace--> permits interleaved tau steps; i.e. the
 * post-state set of lhs is included in the post-state set of rhs.
 */

#ifndef CXL0_CHECK_SIMULATION_HH
#define CXL0_CHECK_SIMULATION_HH

#include <string>
#include <vector>

#include "check/trace.hh"

namespace cxl0::check
{

/** Outcome of one inclusion check. */
struct SimulationResult
{
    bool holds = true;
    /** When violated: a description of the offending state / trace. */
    std::string counterexample;
};

/**
 * Every state over cfg's shape with cache entries in {bottom} union
 * [0, max_value] and memory entries in [0, max_value] that satisfies
 * the global cache invariant.
 */
std::vector<model::State> enumerateStates(const model::SystemConfig &cfg,
                                          Value max_value);

/**
 * Check that from every state in `states`, every state reachable via
 * `lhs` (tau-interleaved) is also reachable via `rhs`. Unified form:
 * the subset construction runs on one shared ModelContext (closures
 * memoized across start states and workers), post-state inclusion is
 * a sorted-frame merge walk, and the report carries the shared
 * SearchStats. CheckRequest::numThreads partitions the start states
 * across that many ShardEngine workers; the *lowest* failing start
 * index wins, so for runs that complete within the config budget the
 * verdict and counterexample are independent of the worker count (a
 * maxConfigs-truncated run is the usual exception — see
 * CheckRequest::numThreads — since scheduling decides which start
 * states fit under the budget). Fail attaches the offending start
 * state / target in the counterexample.
 */
CheckReport checkTraceInclusion(const model::Cxl0Model &model,
                                const std::vector<model::State> &states,
                                const std::vector<model::Label> &lhs,
                                const std::vector<model::Label> &rhs,
                                const CheckRequest &request,
                                ModelContext *shared = nullptr);

/** Historical entry point: thin shim over the unified form. */
SimulationResult
checkTraceInclusion(const model::Cxl0Model &model,
                    const std::vector<model::State> &states,
                    const std::vector<model::Label> &lhs,
                    const std::vector<model::Label> &rhs);

/** One instantiated Proposition 1 item. */
struct Prop1Item
{
    int number;        //!< 1..8 as in the paper
    std::string name;  //!< e.g. "RStore is stronger than LStore"
    std::vector<model::Label> lhs;
    std::vector<model::Label> rhs;
};

/**
 * All eight Proposition 1 items instantiated for: x owned by machine
 * `k`, acting machines `i` (arbitrary) and `j` (non-owner), value v.
 */
std::vector<Prop1Item> prop1Items(NodeId i, NodeId j, NodeId k,
                                  Addr x, Value v);

/**
 * Check every Proposition 1 item over every enumerated state of cfg
 * for every valid choice of (i, j, x, v <= max_value); returns the
 * first failure or success.
 */
SimulationResult checkProp1(const model::SystemConfig &cfg,
                            model::ModelVariant variant,
                            Value max_value);

} // namespace cxl0::check

#endif // CXL0_CHECK_SIMULATION_HH
