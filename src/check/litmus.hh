/**
 * @file
 * The paper's litmus tests as executable data (Fig. 3, §3.5, §6).
 *
 * Each test carries the system configuration it assumes, the
 * serialized trace, and the paper's verdict under each model variant.
 * A verdict of Allowed means the trace is feasible (the behaviour can
 * happen); Forbidden means no interleaving of tau steps executes it.
 */

#ifndef CXL0_CHECK_LITMUS_HH
#define CXL0_CHECK_LITMUS_HH

#include <string>
#include <vector>

#include "check/explorer.hh"
#include "check/trace.hh"
#include "model/semantics.hh"

namespace cxl0::check
{

/** The paper's check-mark / cross-mark verdicts. */
enum class Verdict
{
    Allowed,   //!< paper marks the behaviour with a check mark
    Forbidden, //!< paper marks the behaviour with a cross mark
};

/** "Allowed"/"Forbidden" (and the paper's glyph). */
std::string verdictName(Verdict v);

/** One litmus test. */
struct LitmusTest
{
    /** Test number as used in the paper (1..13). */
    int id;
    /** Short display name. */
    std::string name;
    /** What the test demonstrates (quoted from the paper's intent). */
    std::string lesson;
    /** System configuration: machines and owners. */
    model::SystemConfig config;
    /** The serialized trace to check. */
    std::vector<model::Label> trace;
    /** Expected verdicts per variant. */
    Verdict expectBase;
    Verdict expectLwb;
    Verdict expectPsn;
};

/** Run one test under one variant and return the observed verdict. */
Verdict runLitmus(const LitmusTest &test, model::ModelVariant variant);

/** Whether the observed verdicts of all variants match the paper. */
bool litmusMatchesPaper(const LitmusTest &test);

/** Tests 1-9 of Fig. 3 (all memory non-volatile). */
std::vector<LitmusTest> figure3Tests();

/** Tests 10-12 of §3.5 (machine 1 NVMM, machine 2 volatile). */
std::vector<LitmusTest> variantTests();

/** Test 13, the motivating example of §6 (x on remote machine M2). */
LitmusTest motivatingExample();

/** All 13 tests. */
std::vector<LitmusTest> allTests();

/**
 * Tests 14-19: litmus tests beyond the paper, exploring corners the
 * paper's set leaves open (persistent message passing, out-of-order
 * persistence of unflushed stores, GPF as a global barrier, RMW
 * durability, flush-induced persist ordering). Verdicts are derived
 * from the semantics and locked in as regression oracles.
 */
std::vector<LitmusTest> extendedTests();

/**
 * A litmus scenario recast as an explorer Program: instead of one
 * serialized trace, the whole reachable outcome set of the program
 * under crashes. These are the regression anchors for the explorer
 * rewrite (outcome sets must stay bit-identical across explorer
 * implementations) and the workloads of the scaling benchmark.
 */
struct LitmusProgram
{
    /** Litmus test id the program derives from. */
    int id;
    std::string name;
    model::SystemConfig config;
    model::ModelVariant variant = model::ModelVariant::Base;
    Program program;
    ExploreOptions options;
};

/** Test 4 as a program: LStore + LFlush to a remote owner that may
 *  crash, then a read-back — both final values reachable. */
LitmusProgram litmus4Program();

/** Test 13 (§6 motivating example) as a program: x=1; r1=x; r2=x on
 *  M1 with x owned by a crashable M2. */
LitmusProgram motivatingProgram();

/** Test 14 as a program: MStore d; MStore f; r0=f; r1=d with the
 *  owner of both crashable — the flag can never outlive the data
 *  ((r0,r1) = (1,0) unreachable). */
LitmusProgram litmus14Program();

/** Test 15 as a program: the same shape with plain LStores — the
 *  later store may persist while the earlier one dies, so (1,0) is
 *  reachable. */
LitmusProgram litmus15Program();

/** Test 16 as a program: LStore d; LStore f; GPF; r0=f; r1=d.
 *  Unlike the serialized trace (which pins the crash after the GPF
 *  and is Forbidden), the program form lets the crash strike before
 *  the barrier, so every (r0,r1) combination including the (1,0)
 *  split stays reachable — GPF protects only against later crashes. */
LitmusProgram litmus16Program();

/** Tests 17+18 as one RMW-flavour program: r0 = FAA(L-RMW, d, +1);
 *  r1 = CAS(M-RMW, f, 0 -> 1); r2 = d; r3 = f, with the owner of
 *  both addresses crashable. The L-RMW's update may be lost exactly
 *  like an LStore's (r2 in {0, 1}), the successful M-RMW's never
 *  (r3 = 1 once the CAS ran); both RMWs return their paper-mandated
 *  values (r0 = 0, r1 = 1). */
LitmusProgram litmus17Program();

/** Test 12 as a multi-crash program: the writer LStores x owned by a
 *  machine that may crash *twice*, then reads it back twice. The
 *  serialized trace pins crash/read alternation; the program form
 *  explores every placement of both crashes, so the §3.5
 *  observed-then-lost split (r0, r1) = (1, 0) is reachable alongside
 *  (1, 1) and (0, 0) — and read coherence keeps (0, 1) out. */
LitmusProgram litmus12Program();

/** All explorer-program litmus scenarios. */
std::vector<LitmusProgram> explorerPrograms();

} // namespace cxl0::check

#endif // CXL0_CHECK_LITMUS_HH
