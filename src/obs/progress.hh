/**
 * @file
 * The progress sampler: an optional thread that periodically merges
 * the metrics registry into (a) a human one-line progress report on
 * stderr, (b) a machine-readable heartbeat JSONL stream, and (c) an
 * in-memory RSS high-water series — the liveness surface a future
 * checkpointable / distributed search reports through.
 *
 * The sampler only *reads* the registry (merge-on-read) and *writes*
 * an RSS gauge back through Telemetry::sampleRss — it never touches
 * search state, so it can start late, stop early, or be absent
 * without changing any report. stop() performs one final tick, so an
 * enabled sampler always emits at least one heartbeat even for runs
 * shorter than the interval.
 */

#ifndef CXL0_OBS_PROGRESS_HH
#define CXL0_OBS_PROGRESS_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hh"

namespace cxl0::obs
{

/** Current resident set size (proc statm; getrusage fallback). */
uint64_t currentRssBytes();

struct ProgressOptions
{
    uint64_t intervalMs = 200;
    bool stderrLine = false;        //!< human `--progress` line
    std::string heartbeatPath;      //!< JSONL sink ("" = off)
    std::string label;              //!< tag in heartbeat records
};

class ProgressSampler
{
  public:
    ProgressSampler(Telemetry &tel, ProgressOptions opts);
    ~ProgressSampler();

    ProgressSampler(const ProgressSampler &) = delete;
    ProgressSampler &operator=(const ProgressSampler &) = delete;

    /** Start the sampler thread (idempotent). */
    void start();

    /** Stop it after one final tick (idempotent). */
    void stop();

    struct RssSample
    {
        uint64_t tMs = 0;
        uint64_t rssBytes = 0;
    };

    /** The RSS high-water series sampled so far. */
    std::vector<RssSample> rssSamples() const;

    uint64_t peakRssBytes() const;

    /** Heartbeat records emitted (ticks). */
    size_t heartbeats() const;

  private:
    void run();
    void tick();

    Telemetry &tel_;
    ProgressOptions opts_;
    std::chrono::steady_clock::time_point t0_;

    mutable std::mutex m_;
    std::condition_variable cv_;
    bool running_ = false;
    /** Serializes thread_ spawn/join across start()/stop() racers. */
    std::mutex joinM_;
    std::thread thread_;

    std::ofstream heartbeatFile_;
    std::vector<RssSample> rss_;
    size_t heartbeats_ = 0;
    uint64_t lastConfigs_ = 0;
    std::chrono::steady_clock::time_point lastTick_;
};

} // namespace cxl0::obs

#endif // CXL0_OBS_PROGRESS_HH
