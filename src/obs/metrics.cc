#include "obs/metrics.hh"

#include "common/logging.hh"

namespace cxl0::obs
{

Registry::Registry()
{
    metrics_.reserve(kMaxMetrics);
}

MetricId
Registry::define(const char *name, MetricKind kind)
{
    std::lock_guard<std::mutex> lock(defineMutex_);
    for (size_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i].name == name) {
            CXL0_ASSERT(metrics_[i].kind == kind,
                        "metric '", name,
                        "' redefined with a different kind");
            return static_cast<MetricId>(i);
        }
    }
    CXL0_ASSERT(metrics_.size() < kMaxMetrics,
                "metric registry full (", kMaxMetrics, " metrics)");
    Metric m;
    m.name = name;
    m.kind = kind;
    m.cellsPerShard =
        kind == MetricKind::Histogram ? kHistogramBuckets : 1;
    m.cells = std::make_unique<PaddedCell[]>(kMetricShards *
                                             m.cellsPerShard);
    metrics_.push_back(std::move(m));
    count_.store(metrics_.size(), std::memory_order_release);
    return static_cast<MetricId>(metrics_.size() - 1);
}

size_t
Registry::bucketOf(uint64_t value)
{
    size_t b = 0;
    while (value > 0 && b + 1 < kHistogramBuckets) {
        value >>= 1;
        ++b;
    }
    return b;
}

uint64_t
Registry::value(MetricId id) const
{
    if (id >= count_.load(std::memory_order_acquire))
        return 0;
    const Metric &m = metrics_[id];
    uint64_t out = 0;
    for (size_t s = 0; s < kMetricShards; ++s) {
        for (size_t b = 0; b < m.cellsPerShard; ++b) {
            uint64_t v = m.cells[s * m.cellsPerShard + b].v.load(
                std::memory_order_relaxed);
            if (m.kind == MetricKind::Gauge)
                out = v > out ? v : out;
            else
                out += v;
        }
    }
    return out;
}

std::vector<Registry::Sample>
Registry::snapshot() const
{
    size_t n = count_.load(std::memory_order_acquire);
    std::vector<Sample> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const Metric &m = metrics_[i];
        Sample s;
        s.name = m.name;
        s.kind = m.kind;
        if (m.kind == MetricKind::Histogram) {
            for (size_t sh = 0; sh < kMetricShards; ++sh)
                for (size_t b = 0; b < kHistogramBuckets; ++b)
                    s.buckets[b] +=
                        m.cells[sh * kHistogramBuckets + b].v.load(
                            std::memory_order_relaxed);
            for (uint64_t b : s.buckets)
                s.value += b;
        } else {
            s.value = value(static_cast<MetricId>(i));
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace cxl0::obs
