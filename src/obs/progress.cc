#include "obs/progress.hh"

#include <cinttypes>
#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

namespace cxl0::obs
{

uint64_t
currentRssBytes()
{
    if (FILE *f = std::fopen("/proc/self/statm", "r")) {
        unsigned long long vmPages = 0, rssPages = 0;
        int n = std::fscanf(f, "%llu %llu", &vmPages, &rssPages);
        std::fclose(f);
        if (n == 2)
            return static_cast<uint64_t>(rssPages) *
                   static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
    }
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) == 0)
        return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
    return 0;
}

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            out.push_back(' ');
        else
            out.push_back(c);
    }
}

} // namespace

ProgressSampler::ProgressSampler(Telemetry &tel, ProgressOptions opts)
    : tel_(tel), opts_(std::move(opts)),
      t0_(std::chrono::steady_clock::now()), lastTick_(t0_)
{
    if (!opts_.heartbeatPath.empty())
        heartbeatFile_.open(opts_.heartbeatPath,
                            std::ios::binary | std::ios::trunc);
}

ProgressSampler::~ProgressSampler()
{
    stop();
}

void
ProgressSampler::start()
{
    std::lock_guard<std::mutex> joinLock(joinM_);
    {
        std::lock_guard<std::mutex> lock(m_);
        if (running_)
            return;
        running_ = true;
    }
    if (thread_.joinable())
        thread_.join();
    thread_ = std::thread(&ProgressSampler::run, this);
}

void
ProgressSampler::stop()
{
    // joinM_ first: with it held, no racing start() can flip
    // running_ back to true between the clear and the join below —
    // the sampler thread is guaranteed to observe false and exit.
    // Lock order is joinM_ -> m_ in both start() and stop(); the
    // sampler thread itself only ever takes m_.
    std::lock_guard<std::mutex> joinLock(joinM_);
    {
        std::lock_guard<std::mutex> lock(m_);
        running_ = false;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
        thread_.join();
        tick(); // final tick: an enabled sampler always heartbeats
    }
}

void
ProgressSampler::run()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_.wait_for(
                lock, std::chrono::milliseconds(opts_.intervalMs),
                [&] { return !running_; });
            if (!running_)
                return;
        }
        tick();
    }
}

void
ProgressSampler::tick()
{
    auto now = std::chrono::steady_clock::now();
    uint64_t tMs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                              t0_)
            .count());
    uint64_t rss = currentRssBytes();
    tel_.sampleRss(rss);

    const Registry &reg = tel_.registry();
    uint64_t configs = reg.value(tel_.mConfigsVisited);
    uint64_t interned = reg.value(tel_.mConfigsInterned);
    uint64_t frontier = reg.value(tel_.mFrontierDepth);
    uint64_t pending = reg.value(tel_.mPendingDepth);
    uint64_t tauSkip = reg.value(tel_.mTauSkipped);
    uint64_t ampleSkip = reg.value(tel_.mAmpleSkipped);
    uint64_t crashAmpleSkip = reg.value(tel_.mCrashAmpleSkipped);
    uint64_t sleepSkip = reg.value(tel_.mSleepSkipped);
    uint64_t stealsA = reg.value(tel_.mStealsAttempted);
    uint64_t stealsS = reg.value(tel_.mStealsSucceeded);
    uint64_t spilled = reg.value(tel_.mSpilledConfigs);
    uint64_t spillBytes = reg.value(tel_.mSpillBytes);
    uint64_t checkpoints = reg.value(tel_.mCheckpoints);
    uint64_t cacheHits = reg.value(tel_.mCacheHits);
    uint64_t cacheMisses = reg.value(tel_.mCacheMisses);
    uint64_t muted = reg.value(tel_.mMutedPanics);

    std::lock_guard<std::mutex> lock(m_);
    double dt = std::chrono::duration<double>(now - lastTick_).count();
    double rate =
        dt > 0 && configs >= lastConfigs_
            ? static_cast<double>(configs - lastConfigs_) / dt
            : 0.0;
    lastConfigs_ = configs;
    lastTick_ = now;
    rss_.push_back(RssSample{tMs, rss});
    ++heartbeats_;

    if (heartbeatFile_.is_open()) {
        std::string line;
        line.reserve(512);
        line += "{\"t_ms\":" + std::to_string(tMs);
        if (!opts_.label.empty()) {
            line += ",\"label\":\"";
            appendEscaped(line, opts_.label);
            line += "\"";
        }
        char rateBuf[32];
        std::snprintf(rateBuf, sizeof rateBuf, "%.1f", rate);
        line += ",\"configs\":" + std::to_string(configs);
        line += ",\"configs_per_sec\":";
        line += rateBuf;
        line += ",\"interned\":" + std::to_string(interned);
        line += ",\"frontier_depth\":" + std::to_string(frontier);
        line += ",\"pending_depth\":" + std::to_string(pending);
        line += ",\"tau_skipped\":" + std::to_string(tauSkip);
        line += ",\"ample_skipped\":" + std::to_string(ampleSkip);
        line += ",\"crash_ample_skipped\":" +
                std::to_string(crashAmpleSkip);
        line +=
            ",\"sleep_set_skipped\":" + std::to_string(sleepSkip);
        line += ",\"steals_attempted\":" + std::to_string(stealsA);
        line += ",\"steals_succeeded\":" + std::to_string(stealsS);
        line += ",\"spilled_configs\":" + std::to_string(spilled);
        line += ",\"spill_bytes\":" + std::to_string(spillBytes);
        line +=
            ",\"checkpoint_count\":" + std::to_string(checkpoints);
        line += ",\"cache_hits\":" + std::to_string(cacheHits);
        line += ",\"cache_misses\":" + std::to_string(cacheMisses);
        line += ",\"muted_panics\":" + std::to_string(muted);
        line += ",\"rss_bytes\":" + std::to_string(rss);
        line += "}\n";
        heartbeatFile_.write(
            line.data(), static_cast<std::streamsize>(line.size()));
        heartbeatFile_.flush();
    }

    if (opts_.stderrLine) {
        const char *eol = isatty(2) ? "\r" : "\n";
        std::fprintf(
            stderr,
            "[cxl0] %6.1fs  configs %" PRIu64 " (%.0f/s)  interned %"
            PRIu64 "  frontier %" PRIu64 "  pending %" PRIu64
            "  rss %.1f MiB%s",
            static_cast<double>(tMs) / 1000.0, configs, rate,
            interned, frontier, pending,
            static_cast<double>(rss) / (1024.0 * 1024.0), eol);
        std::fflush(stderr);
    }
}

std::vector<ProgressSampler::RssSample>
ProgressSampler::rssSamples() const
{
    std::lock_guard<std::mutex> lock(m_);
    return rss_;
}

uint64_t
ProgressSampler::peakRssBytes() const
{
    std::lock_guard<std::mutex> lock(m_);
    uint64_t peak = 0;
    for (const RssSample &s : rss_)
        peak = s.rssBytes > peak ? s.rssBytes : peak;
    return peak;
}

size_t
ProgressSampler::heartbeats() const
{
    std::lock_guard<std::mutex> lock(m_);
    return heartbeats_;
}

} // namespace cxl0::obs
