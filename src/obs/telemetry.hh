/**
 * @file
 * The telemetry facade: one `Telemetry` bundles the metrics registry
 * and the span tracer, and a process-global install point lets every
 * driver (scenario run, corpus batch, campaign, fuzz farm, serve)
 * light up the same search internals without plumbing a pointer
 * through `CheckRequest` — which would be fatal, because the request
 * is a cache key and telemetry must stay metadata, never identity.
 *
 * Cost when disabled: `current()` is one relaxed atomic load, and
 * `threadRing()` adds one thread-local generation compare. No clock
 * reads, no allocation, no branch the compiler can't fold.
 *
 * Cost when enabled: search workers publish through a
 * `ShardPublisher` only at the existing deadline-poll cadence
 * (every 256 visited configs), so the hot expansion loop is
 * untouched either way.
 */

#ifndef CXL0_OBS_TELEMETRY_HH
#define CXL0_OBS_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace cxl0::obs
{

/**
 * A worker's view of its own search counters at a publish point.
 * Deliberately obs-local (no dependency on check::SearchStats): the
 * search layer fills one of these from whatever it tracks.
 */
struct SearchSample
{
    // Monotone per-worker counters (published as deltas).
    uint64_t configsVisited = 0;
    uint64_t configsInterned = 0;
    uint64_t tauSkipped = 0;
    uint64_t ampleSkipped = 0;
    uint64_t crashAmpleSkipped = 0;
    uint64_t sleepSkipped = 0;
    uint64_t symmetryMerged = 0;
    uint64_t stealsAttempted = 0;
    uint64_t stealsSucceeded = 0;
    uint64_t spilledConfigs = 0;
    uint64_t spillBytes = 0;
    // Instantaneous levels (published absolute, merged as max).
    uint64_t frontierDepth = 0;
    uint64_t pendingDepth = 0;
    /** Snapshots written so far (search-global; every worker
     *  publishes the same value, gauges merge as max). */
    uint64_t checkpointCount = 0;
};

struct TelemetryOptions
{
    bool trace = false; //!< mint rings / record spans?
    size_t ringCapacity = 1 << 15;
    size_t maxRings = 512;
};

/** The registry + tracer bundle a driver installs for one run. */
class Telemetry
{
  public:
    using Options = TelemetryOptions;

    explicit Telemetry(Options opts = Options());

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    Registry &registry() { return registry_; }
    const Registry &registry() const { return registry_; }
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    bool traceEnabled() const { return traceEnabled_; }

    /** New single-writer ring, or nullptr (tracing off / budget). */
    TraceRing *ring(std::string threadName)
    {
        return traceEnabled_ ? tracer_.acquireRing(
                                   std::move(threadName))
                             : nullptr;
    }

    /** Publish a worker sample: counter deltas + absolute gauges. */
    void publishSearch(size_t shard, const SearchSample &cur,
                       const SearchSample &last);

    void countCacheHit() { registry_.add(0, mCacheHits, 1); }
    void countCacheMiss() { registry_.add(0, mCacheMisses, 1); }
    void countMutedPanics(uint64_t n)
    {
        if (n > 0)
            registry_.add(0, mMutedPanics, n);
    }
    void sampleRss(uint64_t bytes)
    {
        registry_.set(0, mRssBytes, bytes);
    }

    // Pre-defined ids so samplers read without name lookups.
    MetricId mConfigsVisited, mConfigsInterned, mTauSkipped,
        mAmpleSkipped, mCrashAmpleSkipped, mSleepSkipped,
        mSymmetryMerged, mStealsAttempted, mStealsSucceeded,
        mSpilledConfigs, mSpillBytes, mCheckpoints, mFrontierDepth,
        mPendingDepth, mCacheHits, mCacheMisses, mRssBytes,
        mMutedPanics;

  private:
    Registry registry_;
    Tracer tracer_;
    bool traceEnabled_;
};

/** The installed telemetry, or nullptr (one relaxed load). */
Telemetry *current();

/**
 * Install (or clear with nullptr) the process telemetry. Not a
 * stack: callers that need save/restore use ScopedTelemetry.
 * Installing bumps a generation counter so threadRing() caches
 * invalidate.
 */
void install(Telemetry *t);

/**
 * RAII install that restores the previous telemetry on scope exit —
 * lets the fuzz differential gate run a traced rerun inside a farm
 * that already installed its own telemetry.
 */
class ScopedTelemetry
{
  public:
    explicit ScopedTelemetry(Telemetry *t);
    ~ScopedTelemetry();

    ScopedTelemetry(const ScopedTelemetry &) = delete;
    ScopedTelemetry &operator=(const ScopedTelemetry &) = delete;

  private:
    Telemetry *prev_;
};

/**
 * This thread's driver-phase ring (parse/run/shrink/replay spans),
 * minted lazily per installed telemetry and cached thread-locally.
 * nullptr when no telemetry is installed or tracing is off.
 */
TraceRing *threadRing();

/**
 * Per-worker publisher: remembers the last sample so counters go in
 * as deltas (the registry keeps accumulating across the sequential
 * scenarios of a farm) while gauges go in absolute.
 */
class ShardPublisher
{
  public:
    ShardPublisher(Telemetry *tel, size_t shard)
        : tel_(tel), shard_(shard)
    {
    }

    bool enabled() const { return tel_ != nullptr; }

    void publish(const SearchSample &cur)
    {
        if (tel_ == nullptr)
            return;
        tel_->publishSearch(shard_, cur, last_);
        last_ = cur;
    }

  private:
    Telemetry *tel_;
    size_t shard_;
    SearchSample last_;
};

} // namespace cxl0::obs

#endif // CXL0_OBS_TELEMETRY_HH
