/**
 * @file
 * The metrics registry: named counters, gauges, and histograms with
 * per-shard lock-free accumulation and merge-on-read.
 *
 * Write side: every metric owns one cache-line-padded atomic cell per
 * shard slot, and each search worker publishes only into its own
 * slot, so an update is a relaxed load + relaxed store (a plain add
 * on every mainstream ISA — no lock prefix, no fence, no contention).
 * Read side (the progress sampler, the heartbeat emitter) merges the
 * slots on demand: counters sum across shards, gauges take the max,
 * histograms sum per bucket. Readers race writers harmlessly — a
 * merge is a monotone snapshot, never a consistency point.
 *
 * The registry is *telemetry, not identity*: nothing in the search
 * reads a metric back, so registering or publishing can never change
 * a verdict, an outcome set, or an interned-config count. The stable
 * report projection remains check::SearchStats; this registry is the
 * live view the sampler aggregates while a search is still running.
 */

#ifndef CXL0_OBS_METRICS_HH
#define CXL0_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cxl0::obs
{

/** How a metric's per-shard cells merge on read. */
enum class MetricKind
{
    Counter,   //!< monotone count; shards sum
    Gauge,     //!< instantaneous level; shards max
    Histogram, //!< log2-bucketed values; buckets sum across shards
};

using MetricId = uint32_t;

/** Shard slots per metric; worker w writes slot w % kMetricShards. */
constexpr size_t kMetricShards = 64;

/** Histogram buckets: bucket i counts values in [2^(i-1), 2^i). */
constexpr size_t kHistogramBuckets = 32;

class Registry
{
  public:
    Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register (or look up) a metric by name. Idempotent: a second
     * define with the same name returns the existing id (the kind
     * must match). Thread-safe, but meant for setup paths — the hot
     * loop holds MetricIds, never names.
     */
    MetricId define(const char *name, MetricKind kind);

    /** Add `delta` to shard `shard`'s cell (counters/gauges). */
    void add(size_t shard, MetricId id, uint64_t delta)
    {
        std::atomic<uint64_t> &c = cell(shard, id, 0);
        c.store(c.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
    }

    /** Overwrite shard `shard`'s cell (gauges). */
    void set(size_t shard, MetricId id, uint64_t value)
    {
        cell(shard, id, 0).store(value, std::memory_order_relaxed);
    }

    /** Record one value into a histogram metric. */
    void observe(size_t shard, MetricId id, uint64_t value)
    {
        std::atomic<uint64_t> &c =
            cell(shard, id, bucketOf(value));
        c.store(c.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    }

    /**
     * Merge-on-read value: counters sum shards, gauges max shards,
     * histograms report the total observation count.
     */
    uint64_t value(MetricId id) const;

    /** One merged metric, as the sampler serializes it. */
    struct Sample
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        uint64_t value = 0;
        /** Per-bucket counts (histograms only). */
        std::array<uint64_t, kHistogramBuckets> buckets{};
    };

    /** Merge every metric (registration order). */
    std::vector<Sample> snapshot() const;

    size_t size() const
    {
        return count_.load(std::memory_order_acquire);
    }

    /** Log2 bucket of a value (0 -> bucket 0). */
    static size_t bucketOf(uint64_t value);

  private:
    struct alignas(64) PaddedCell
    {
        std::atomic<uint64_t> v{0};
    };

    struct Metric
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        /** kMetricShards cells (counter/gauge) or
         *  kMetricShards * kHistogramBuckets (histogram). */
        std::unique_ptr<PaddedCell[]> cells;
        size_t cellsPerShard = 1;
    };

    std::atomic<uint64_t> &cell(size_t shard, MetricId id,
                                size_t bucket)
    {
        Metric &m = metrics_[id];
        return m
            .cells[(shard % kMetricShards) * m.cellsPerShard + bucket]
            .v;
    }

    /**
     * Registration appends under the mutex; readers index below the
     * acquire-loaded count. The vector is reserved to its hard cap at
     * construction so publication never reallocates under a reader.
     */
    static constexpr size_t kMaxMetrics = 256;

    mutable std::mutex defineMutex_;
    std::vector<Metric> metrics_;
    std::atomic<size_t> count_{0};
};

} // namespace cxl0::obs

#endif // CXL0_OBS_METRICS_HH
