#include "obs/telemetry.hh"

namespace cxl0::obs
{

Telemetry::Telemetry(Options opts)
    : tracer_(opts.ringCapacity, opts.maxRings),
      traceEnabled_(opts.trace)
{
    mConfigsVisited =
        registry_.define("search.configs_visited", MetricKind::Counter);
    mConfigsInterned =
        registry_.define("search.configs_interned", MetricKind::Counter);
    mTauSkipped =
        registry_.define("search.tau_skipped", MetricKind::Counter);
    mAmpleSkipped =
        registry_.define("search.ample_skipped", MetricKind::Counter);
    mCrashAmpleSkipped = registry_.define("search.crash_ample_skipped",
                                          MetricKind::Counter);
    mSleepSkipped = registry_.define("search.sleep_set_skipped",
                                     MetricKind::Counter);
    mSymmetryMerged =
        registry_.define("search.symmetry_merged", MetricKind::Counter);
    mStealsAttempted = registry_.define("search.steals_attempted",
                                        MetricKind::Counter);
    mStealsSucceeded = registry_.define("search.steals_succeeded",
                                        MetricKind::Counter);
    mSpilledConfigs = registry_.define("search.spilled_configs",
                                       MetricKind::Counter);
    mSpillBytes =
        registry_.define("search.spill_bytes", MetricKind::Counter);
    mCheckpoints =
        registry_.define("search.checkpoints", MetricKind::Gauge);
    mFrontierDepth =
        registry_.define("search.frontier_depth", MetricKind::Gauge);
    mPendingDepth =
        registry_.define("search.pending_depth", MetricKind::Gauge);
    mCacheHits =
        registry_.define("cache.hits", MetricKind::Counter);
    mCacheMisses =
        registry_.define("cache.misses", MetricKind::Counter);
    mRssBytes =
        registry_.define("process.rss_bytes", MetricKind::Gauge);
    mMutedPanics =
        registry_.define("process.muted_panics", MetricKind::Counter);
}

void
Telemetry::publishSearch(size_t shard, const SearchSample &cur,
                         const SearchSample &last)
{
    auto delta = [&](MetricId id, uint64_t c, uint64_t l) {
        if (c > l)
            registry_.add(shard, id, c - l);
    };
    delta(mConfigsVisited, cur.configsVisited, last.configsVisited);
    delta(mConfigsInterned, cur.configsInterned, last.configsInterned);
    delta(mTauSkipped, cur.tauSkipped, last.tauSkipped);
    delta(mAmpleSkipped, cur.ampleSkipped, last.ampleSkipped);
    delta(mCrashAmpleSkipped, cur.crashAmpleSkipped,
          last.crashAmpleSkipped);
    delta(mSleepSkipped, cur.sleepSkipped, last.sleepSkipped);
    delta(mSymmetryMerged, cur.symmetryMerged, last.symmetryMerged);
    delta(mStealsAttempted, cur.stealsAttempted, last.stealsAttempted);
    delta(mStealsSucceeded, cur.stealsSucceeded, last.stealsSucceeded);
    delta(mSpilledConfigs, cur.spilledConfigs, last.spilledConfigs);
    delta(mSpillBytes, cur.spillBytes, last.spillBytes);
    registry_.set(shard, mFrontierDepth, cur.frontierDepth);
    registry_.set(shard, mPendingDepth, cur.pendingDepth);
    registry_.set(shard, mCheckpoints, cur.checkpointCount);
}

namespace
{

std::atomic<Telemetry *> g_telemetry{nullptr};
std::atomic<uint64_t> g_generation{0};

} // namespace

Telemetry *
current()
{
    return g_telemetry.load(std::memory_order_relaxed);
}

void
install(Telemetry *t)
{
    g_telemetry.store(t, std::memory_order_release);
    g_generation.fetch_add(1, std::memory_order_release);
}

ScopedTelemetry::ScopedTelemetry(Telemetry *t)
    : prev_(g_telemetry.load(std::memory_order_acquire))
{
    install(t);
}

ScopedTelemetry::~ScopedTelemetry()
{
    install(prev_);
}

TraceRing *
threadRing()
{
    struct Cache
    {
        uint64_t gen = ~uint64_t{0};
        TraceRing *ring = nullptr;
    };
    thread_local Cache cache;
    uint64_t gen = g_generation.load(std::memory_order_acquire);
    if (cache.gen != gen) {
        cache.gen = gen;
        Telemetry *t = g_telemetry.load(std::memory_order_acquire);
        cache.ring = t != nullptr ? t->ring("driver") : nullptr;
    }
    return cache.ring;
}

} // namespace cxl0::obs
