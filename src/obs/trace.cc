#include "obs/trace.hh"

#include <cstdio>
#include <fstream>

namespace cxl0::obs
{

Tracer::Tracer(size_t ringCapacity, size_t maxRings)
    : ringCapacity_(ringCapacity), maxRings_(maxRings),
      epoch_(std::chrono::steady_clock::now())
{
    rings_.reserve(maxRings_);
}

TraceRing *
Tracer::acquireRing(std::string threadName)
{
    std::lock_guard<std::mutex> lock(m_);
    if (rings_.size() >= maxRings_)
        return nullptr;
    uint32_t tid = static_cast<uint32_t>(rings_.size());
    rings_.push_back(std::unique_ptr<TraceRing>(new TraceRing(
        tid, std::move(threadName), ringCapacity_, epoch_)));
    return rings_.back().get();
}

uint64_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(m_);
    uint64_t total = 0;
    for (const auto &r : rings_)
        total += r->dropped();
    return total;
}

namespace
{

/** Trace-event names are ASCII literals; escape defensively anyway. */
void
appendJsonString(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace

std::string
Tracer::toJson() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::string out;
    out.reserve(1 << 16);
    out += "{\"traceEvents\":[\n";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };
    for (const auto &rp : rings_) {
        const TraceRing &r = *rp;
        comma();
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":" +
               std::to_string(r.tid()) + ",\"args\":{\"name\":";
        appendJsonString(out, r.threadName());
        out += "}}";
        for (const TraceEvent &e : r.events()) {
            comma();
            out += "{\"name\":";
            appendJsonString(out, e.name);
            out += ",\"ph\":\"";
            out.push_back(e.phase);
            out += "\",\"pid\":1,\"tid\":" + std::to_string(r.tid()) +
                   ",\"ts\":" + std::to_string(e.tsUs);
            if (e.phase == 'i')
                out += ",\"s\":\"t\"";
            if (e.phase == 'C')
                out += ",\"args\":{\"value\":" +
                       std::to_string(e.arg) + "}";
            else if (e.hasArg)
                out += ",\"args\":{\"arg\":" + std::to_string(e.arg) +
                       "}";
            out += "}";
        }
        if (r.dropped() > 0) {
            comma();
            out += "{\"name\":\"dropped_events\",\"ph\":\"C\","
                   "\"pid\":1,\"tid\":" +
                   std::to_string(r.tid()) +
                   ",\"ts\":0,\"args\":{\"value\":" +
                   std::to_string(r.dropped()) + "}}";
        }
    }
    out += "\n]}\n";
    return out;
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    std::string json = toJson();
    f.write(json.data(), static_cast<std::streamsize>(json.size()));
    return static_cast<bool>(f);
}

} // namespace cxl0::obs
