/**
 * @file
 * The span tracer: per-shard event rings flushed to Chrome
 * trace-event JSON (loadable in Perfetto / chrome://tracing).
 *
 * Every ring is single-writer by construction — acquireRing() mints a
 * *new* ring per call, so two threads (or two sequential searches on
 * one thread) never share one. An event is {static name, phase,
 * timestamp, optional arg}: phase spans write a B/E pair (ScopedSpan
 * guarantees the pair stays balanced — the E is written only when the
 * B fit), instants write one 'i' event, counters one 'C' event.
 * Rings are bounded: a full ring drops (and counts) further events
 * instead of growing, so a million-config search cannot turn the
 * tracer into an allocator benchmark. Event names must be string
 * literals (or otherwise outlive the tracer): the ring stores the
 * pointer, never a copy.
 *
 * Determinism contract: nothing reads a ring until flush, and flush
 * happens after the work is done — tracing can shift wall-clock, but
 * never a verdict, an outcome set, or an interned-config count.
 */

#ifndef CXL0_OBS_TRACE_HH
#define CXL0_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cxl0::obs
{

/** One trace event; `name` must outlive the tracer. */
struct TraceEvent
{
    const char *name = nullptr;
    uint64_t tsUs = 0;
    uint64_t arg = 0;
    char phase = 'i'; //!< 'B' / 'E' / 'i' (instant) / 'C' (counter)
    bool hasArg = false;
};

class Tracer;

/** Bounded single-writer event ring; one per shard (or phase). */
class TraceRing
{
  public:
    /** Append; false (and a drop count) when the ring is full. */
    bool push(const char *name, char phase)
    {
        return pushImpl(name, phase, 0, false);
    }

    bool pushArg(const char *name, char phase, uint64_t arg)
    {
        return pushImpl(name, phase, arg, true);
    }

    /** One instant event ('i'). */
    void instant(const char *name) { pushImpl(name, 'i', 0, false); }

    /** One instant event with a numeric arg. */
    void instant(const char *name, uint64_t arg)
    {
        pushImpl(name, 'i', arg, true);
    }

    /** One counter sample ('C'). */
    void counter(const char *name, uint64_t value)
    {
        pushImpl(name, 'C', value, true);
    }

    uint32_t tid() const { return tid_; }
    const std::string &threadName() const { return threadName_; }
    size_t size() const { return events_.size(); }
    uint64_t dropped() const { return dropped_; }
    const std::vector<TraceEvent> &events() const { return events_; }

  private:
    friend class Tracer;

    TraceRing(uint32_t tid, std::string threadName, size_t capacity,
              std::chrono::steady_clock::time_point epoch)
        : tid_(tid), threadName_(std::move(threadName)),
          capacity_(capacity), epoch_(epoch)
    {
        events_.reserve(capacity_);
    }

    bool pushImpl(const char *name, char phase, uint64_t arg,
                  bool has_arg)
    {
        // 'E' events bypass the capacity check: each one closes a 'B'
        // that already fit (ScopedSpan never writes an orphan E), so
        // the overshoot is bounded by span nesting depth and the B/E
        // pairing stays balanced even when the ring fills mid-span.
        if (events_.size() >= capacity_ && phase != 'E') {
            ++dropped_;
            return false;
        }
        TraceEvent e;
        e.name = name;
        e.tsUs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
        e.arg = arg;
        e.phase = phase;
        e.hasArg = has_arg;
        events_.push_back(e);
        return true;
    }

    uint32_t tid_;
    std::string threadName_;
    size_t capacity_;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<TraceEvent> events_;
    uint64_t dropped_ = 0;
};

/**
 * Owns the rings and the trace epoch; flushes everything to one
 * Chrome trace-event JSON document.
 */
class Tracer
{
  public:
    explicit Tracer(size_t ringCapacity = 1 << 15,
                    size_t maxRings = 512);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Mint a new single-writer ring (thread-safe). Returns nullptr
     * when the ring budget is exhausted — callers must tolerate a
     * null ring (every TraceRing entry point below does).
     */
    TraceRing *acquireRing(std::string threadName);

    /** Events dropped across all rings (full-ring back-pressure). */
    uint64_t droppedEvents() const;

    /** The whole trace as {"traceEvents":[...]} JSON. */
    std::string toJson() const;

    /** Write toJson() to `path`; false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    size_t ringCapacity_;
    size_t maxRings_;
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex m_;
    std::vector<std::unique_ptr<TraceRing>> rings_;
};

/**
 * RAII phase span. Null-ring safe; the closing 'E' is written only
 * when the opening 'B' fit, so B/E pairs stay balanced even when the
 * ring fills mid-span.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceRing *ring, const char *name)
        : ring_(ring), name_(name)
    {
        open_ = ring_ != nullptr && ring_->push(name_, 'B');
    }

    ~ScopedSpan()
    {
        if (open_)
            ring_->push(name_, 'E');
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceRing *ring_;
    const char *name_;
    bool open_ = false;
};

} // namespace cxl0::obs

#endif // CXL0_OBS_TRACE_HH
